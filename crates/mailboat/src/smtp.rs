//! Thin SMTP/POP3-style protocol frontends over a [`MailServer`].
//!
//! The paper's protocol layer is explicitly *unverified* ("The protocol
//! implementation is unverified, but works with the Postal mail server
//! benchmarking library", §8.2); this module is its analog: line-based
//! SMTP and POP3 session state machines that drive the verified library
//! underneath. The `mailboat_server` example wires them to a workload.

use crate::server::MailServer;
use std::sync::Arc;

/// An SMTP session state machine (the delivery path).
pub struct SmtpSession<S: MailServer> {
    server: Arc<S>,
    state: SmtpState,
    rcpt: Vec<u64>,
    data: Vec<u8>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SmtpState {
    Start,
    Greeted,
    GotSender,
    InData,
}

/// Parses "user<N>@example.com" or plain "<N>" into a user id.
fn parse_user(addr: &str) -> Option<u64> {
    let addr = addr.trim().trim_start_matches('<').trim_end_matches('>');
    let local = addr.split('@').next()?;
    local.strip_prefix("user").unwrap_or(local).parse().ok()
}

impl<S: MailServer> SmtpSession<S> {
    /// Opens a session; the reply is the server greeting.
    pub fn new(server: Arc<S>) -> (Self, String) {
        (
            SmtpSession {
                server,
                state: SmtpState::Start,
                rcpt: Vec::new(),
                data: Vec::new(),
            },
            "220 mailboat ESMTP".to_string(),
        )
    }

    /// Handles one client line, returning the server reply (possibly
    /// empty while accumulating DATA).
    pub fn handle_line(&mut self, line: &str) -> String {
        if self.state == SmtpState::InData {
            if line == "." {
                for user in self.rcpt.drain(..) {
                    self.server.deliver(user, &self.data);
                }
                self.data.clear();
                self.state = SmtpState::Greeted;
                return "250 OK: queued".to_string();
            }
            // Dot-stuffing per RFC 5321.
            let payload = line.strip_prefix('.').unwrap_or(line);
            self.data.extend_from_slice(payload.as_bytes());
            self.data.push(b'\n');
            return String::new();
        }
        let upper = line.to_ascii_uppercase();
        if upper.starts_with("HELO") || upper.starts_with("EHLO") {
            self.state = SmtpState::Greeted;
            "250 mailboat".to_string()
        } else if upper.starts_with("MAIL FROM:") {
            if self.state != SmtpState::Greeted {
                return "503 bad sequence".to_string();
            }
            self.state = SmtpState::GotSender;
            "250 OK".to_string()
        } else if upper.starts_with("RCPT TO:") {
            if self.state != SmtpState::GotSender {
                return "503 bad sequence".to_string();
            }
            match parse_user(&line["RCPT TO:".len()..]) {
                Some(u) => {
                    self.rcpt.push(u);
                    "250 OK".to_string()
                }
                None => "550 no such user".to_string(),
            }
        } else if upper.starts_with("DATA") {
            if self.rcpt.is_empty() {
                return "503 no recipients".to_string();
            }
            self.state = SmtpState::InData;
            "354 end with .".to_string()
        } else if upper.starts_with("QUIT") {
            "221 bye".to_string()
        } else {
            "500 unrecognized".to_string()
        }
    }
}

/// A POP3 session state machine (the pickup/delete path).
///
/// `USER` implicitly performs the Mailboat `Pickup` (taking the per-user
/// lock); `QUIT` performs `Unlock`, matching §8.1: "the SMTP server calls
/// Pickup when a user connects and Unlock when they disconnect".
pub struct Pop3Session<S: MailServer> {
    server: Arc<S>,
    user: Option<u64>,
    msgs: Vec<crate::server::Message>,
}

impl<S: MailServer> Pop3Session<S> {
    /// Opens a session; the reply is the server greeting.
    pub fn new(server: Arc<S>) -> (Self, String) {
        (
            Pop3Session {
                server,
                user: None,
                msgs: Vec::new(),
            },
            "+OK mailboat POP3".to_string(),
        )
    }

    /// Handles one client line, returning the server reply.
    pub fn handle_line(&mut self, line: &str) -> String {
        let mut parts = line.split_whitespace();
        let cmd = parts.next().unwrap_or("").to_ascii_uppercase();
        match cmd.as_str() {
            "USER" => match parts.next().and_then(parse_user) {
                Some(u) => {
                    self.msgs = self.server.pickup(u);
                    self.user = Some(u);
                    "+OK".to_string()
                }
                None => "-ERR no such user".to_string(),
            },
            "LIST" => match self.user {
                Some(_) => {
                    let mut out = format!("+OK {} messages", self.msgs.len());
                    for (i, m) in self.msgs.iter().enumerate() {
                        out.push_str(&format!("\n{} {}", i + 1, m.contents.len()));
                    }
                    out
                }
                None => "-ERR not authenticated".to_string(),
            },
            "RETR" => {
                let idx: usize = match parts.next().and_then(|s| s.parse().ok()) {
                    Some(i) => i,
                    None => return "-ERR bad index".to_string(),
                };
                match self.msgs.get(idx.wrapping_sub(1)) {
                    Some(m) => format!(
                        "+OK {} octets\n{}\n.",
                        m.contents.len(),
                        String::from_utf8_lossy(&m.contents)
                    ),
                    None => "-ERR no such message".to_string(),
                }
            }
            "DELE" => {
                let idx: usize = match parts.next().and_then(|s| s.parse().ok()) {
                    Some(i) => i,
                    None => return "-ERR bad index".to_string(),
                };
                match (self.user, self.msgs.get(idx.wrapping_sub(1))) {
                    (Some(u), Some(m)) => {
                        self.server.delete(u, &m.id.clone());
                        "+OK deleted".to_string()
                    }
                    _ => "-ERR no such message".to_string(),
                }
            }
            "QUIT" => {
                if let Some(u) = self.user.take() {
                    self.server.unlock(u);
                }
                "+OK bye".to_string()
            }
            _ => "-ERR unrecognized".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{mail_dirs, Mailboat};
    use goose_rt::fs::NativeFs;
    use goose_rt::runtime::NativeRt;

    fn server() -> Arc<Mailboat> {
        let dirs = mail_dirs(4);
        let dir_refs: Vec<&str> = dirs.iter().map(String::as_str).collect();
        Arc::new(Mailboat::init(NativeFs::new(&dir_refs), NativeRt::new(), 4).unwrap())
    }

    #[test]
    fn smtp_delivery_then_pop3_retrieval() {
        let s = server();
        let (mut smtp, greet) = SmtpSession::new(Arc::clone(&s));
        assert!(greet.starts_with("220"));
        assert!(smtp.handle_line("HELO test").starts_with("250"));
        assert!(smtp.handle_line("MAIL FROM:<a@b>").starts_with("250"));
        assert!(smtp
            .handle_line("RCPT TO:<user2@example.com>")
            .starts_with("250"));
        assert!(smtp.handle_line("DATA").starts_with("354"));
        assert_eq!(smtp.handle_line("Subject: hi"), "");
        assert_eq!(smtp.handle_line("body text"), "");
        assert!(smtp.handle_line(".").starts_with("250"));

        let (mut pop, greet) = Pop3Session::new(Arc::clone(&s));
        assert!(greet.starts_with("+OK"));
        assert!(pop.handle_line("USER user2").starts_with("+OK"));
        assert!(pop.handle_line("LIST").contains("1 messages"));
        let retr = pop.handle_line("RETR 1");
        assert!(retr.contains("Subject: hi"), "{retr}");
        assert!(pop.handle_line("DELE 1").starts_with("+OK"));
        assert!(pop.handle_line("QUIT").starts_with("+OK"));

        // Mailbox now empty.
        assert!(s.pickup(2).is_empty());
        s.unlock(2);
    }

    #[test]
    fn smtp_enforces_sequencing() {
        let s = server();
        let (mut smtp, _) = SmtpSession::new(s);
        assert!(smtp.handle_line("MAIL FROM:<a@b>").starts_with("503"));
        assert!(smtp.handle_line("DATA").starts_with("503"));
        assert!(smtp.handle_line("NONSENSE").starts_with("500"));
    }

    #[test]
    fn smtp_dot_stuffing() {
        let s = server();
        let (mut smtp, _) = SmtpSession::new(Arc::clone(&s));
        smtp.handle_line("HELO t");
        smtp.handle_line("MAIL FROM:<a@b>");
        smtp.handle_line("RCPT TO:<user0@x>");
        smtp.handle_line("DATA");
        smtp.handle_line("..leading dot");
        smtp.handle_line(".");
        let msgs = s.pickup(0);
        assert_eq!(msgs[0].contents, b".leading dot\n");
        s.unlock(0);
    }

    #[test]
    fn pop3_rejects_unauthenticated() {
        let s = server();
        let (mut pop, _) = Pop3Session::new(s);
        assert!(pop.handle_line("LIST").starts_with("-ERR"));
        assert!(pop.handle_line("USER nobody").starts_with("-ERR"));
    }

    #[test]
    fn parse_user_variants() {
        assert_eq!(parse_user("user7@example.com"), Some(7));
        assert_eq!(parse_user("<user12@x>"), Some(12));
        assert_eq!(parse_user("5"), Some(5));
        assert_eq!(parse_user("bob@x"), None);
    }
}
