//! The Mailboat specification (§8.1): a set of user mailboxes, each a
//! mapping from message IDs to contents.
//!
//! `Deliver` is invoked without an ID (the implementation picks a fresh
//! one by retrying random names, §8.2) and therefore *commits* as the
//! refined [`MailOp::DeliverAs`] carrying the chosen ID —
//! [`perennial_spec::SpecTS::op_refines`] accepts exactly that
//! refinement. `Delete` of an ID not in the mailbox is undefined
//! behaviour: the library assumes callers only delete messages returned
//! by `Pickup` (§8.1, §9.2). The crash transition is `ret tt`: delivered
//! mail survives crashes (spool cleanup is invisible at this level).

use perennial_spec::{SpecTS, Transition};
use std::collections::BTreeMap;

/// Abstract state: user ID → (message ID → contents).
pub type MailState = BTreeMap<u64, BTreeMap<String, String>>;

/// Mailboat operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MailOp {
    /// `Deliver(user, msg)` as invoked (ID not yet chosen).
    Deliver(u64, String),
    /// `Deliver` as committed, carrying the implementation-chosen ID.
    DeliverAs(u64, String, String),
    /// `Pickup(user)`: list the complete mailbox (and implicitly take
    /// the user lock).
    Pickup(u64),
    /// `Delete(user, id)`: remove a previously picked-up message.
    Delete(u64, String),
    /// `Unlock(user)`: release the user lock.
    Unlock(u64),
}

/// Mailboat return values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MailRet {
    /// Acknowledgement for `Deliver`/`Delete`/`Unlock`.
    Unit,
    /// `Pickup`'s message list, sorted by ID.
    Msgs(Vec<(String, String)>),
}

/// The Mailboat spec for a fixed set of `users`.
#[derive(Debug, Clone)]
pub struct MailSpec {
    /// Number of user mailboxes.
    pub users: u64,
}

impl SpecTS for MailSpec {
    type State = MailState;
    type Op = MailOp;
    type Ret = MailRet;

    fn init(&self) -> MailState {
        (0..self.users).map(|u| (u, BTreeMap::new())).collect()
    }

    fn op_transition(&self, op: &MailOp) -> Transition<MailState, MailRet> {
        match op.clone() {
            // The un-refined Deliver cannot commit: the implementation
            // must resolve the ID first.
            MailOp::Deliver(..) => Transition::blocked(),
            MailOp::DeliverAs(user, msg, id) => {
                let id_probe = id.clone();
                Transition::gets(move |s: &MailState| {
                    s.get(&user).map(|mbox| mbox.contains_key(&id_probe))
                })
                .and_then(move |present| {
                    let msg = msg.clone();
                    let id = id.clone();
                    match present {
                        None => Transition::undefined(), // unknown user
                        // The implementation only commits after winning
                        // the exclusive link, so a clash is a disabled
                        // transition, not UB.
                        Some(true) => Transition::blocked(),
                        Some(false) => Transition::modify(move |s: &MailState| {
                            let mut s = s.clone();
                            s.get_mut(&user)
                                .expect("user checked above")
                                .insert(id.clone(), msg.clone());
                            s
                        })
                        .map(|()| MailRet::Unit),
                    }
                })
            }
            MailOp::Pickup(user) => Transition::gets(move |s: &MailState| {
                s.get(&user).map(|mbox| {
                    mbox.iter()
                        .map(|(k, v)| (k.clone(), v.clone()))
                        .collect::<Vec<_>>()
                })
            })
            .and_then(|mv| match mv {
                Some(msgs) => Transition::ret(MailRet::Msgs(msgs)),
                None => Transition::undefined(),
            }),
            MailOp::Delete(user, id) => {
                let id_probe = id.clone();
                Transition::gets(move |s: &MailState| {
                    s.get(&user).map(|mbox| mbox.contains_key(&id_probe))
                })
                .and_then(move |present| {
                    let id = id.clone();
                    match present {
                        // Deleting an unlisted message is caller UB.
                        None | Some(false) => Transition::undefined(),
                        Some(true) => Transition::modify(move |s: &MailState| {
                            let mut s = s.clone();
                            s.get_mut(&user).expect("user present").remove(&id);
                            s
                        })
                        .map(|()| MailRet::Unit),
                    }
                })
            }
            MailOp::Unlock(user) => Transition::gets(move |s: &MailState| s.contains_key(&user))
                .and_then(|ok| {
                    if ok {
                        Transition::ret(MailRet::Unit)
                    } else {
                        Transition::undefined()
                    }
                }),
        }
    }

    fn crash_transition(&self) -> Transition<MailState, ()> {
        Transition::skip()
    }

    fn op_refines(&self, invoked: &MailOp, committed: &MailOp) -> bool {
        match (invoked, committed) {
            (MailOp::Deliver(u1, m1), MailOp::DeliverAs(u2, m2, _id)) => u1 == u2 && m1 == m2,
            _ => invoked == committed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perennial_spec::system::{ReplayError, SeqReplay};

    #[test]
    fn deliver_pickup_delete_cycle() {
        let mut r = SeqReplay::new(MailSpec { users: 2 });
        r.step_op(&MailOp::DeliverAs(0, "hello".into(), "m1".into()))
            .unwrap();
        assert_eq!(
            r.step_op(&MailOp::Pickup(0)).unwrap(),
            MailRet::Msgs(vec![("m1".into(), "hello".into())])
        );
        r.step_op(&MailOp::Delete(0, "m1".into())).unwrap();
        r.step_op(&MailOp::Unlock(0)).unwrap();
        assert_eq!(
            r.step_op(&MailOp::Pickup(0)).unwrap(),
            MailRet::Msgs(vec![])
        );
    }

    #[test]
    fn deliver_unrefined_cannot_commit() {
        let mut r = SeqReplay::new(MailSpec { users: 1 });
        assert_eq!(
            r.step_op(&MailOp::Deliver(0, "x".into())),
            Err(ReplayError::Blocked)
        );
    }

    #[test]
    fn deliver_id_clash_is_blocked() {
        let mut r = SeqReplay::new(MailSpec { users: 1 });
        r.step_op(&MailOp::DeliverAs(0, "a".into(), "m".into()))
            .unwrap();
        assert_eq!(
            r.step_op(&MailOp::DeliverAs(0, "b".into(), "m".into())),
            Err(ReplayError::Blocked)
        );
    }

    #[test]
    fn delete_unlisted_is_undefined() {
        let mut r = SeqReplay::new(MailSpec { users: 1 });
        assert_eq!(
            r.step_op(&MailOp::Delete(0, "ghost".into())),
            Err(ReplayError::Undefined)
        );
    }

    #[test]
    fn unknown_user_is_undefined() {
        let mut r = SeqReplay::new(MailSpec { users: 1 });
        assert_eq!(r.step_op(&MailOp::Pickup(9)), Err(ReplayError::Undefined));
    }

    #[test]
    fn refinement_relation() {
        let spec = MailSpec { users: 1 };
        let inv = MailOp::Deliver(0, "m".into());
        assert!(spec.op_refines(&inv, &MailOp::DeliverAs(0, "m".into(), "id7".into())));
        assert!(!spec.op_refines(&inv, &MailOp::DeliverAs(1, "m".into(), "id7".into())));
        assert!(!spec.op_refines(&inv, &MailOp::DeliverAs(0, "other".into(), "id7".into())));
        assert!(spec.op_refines(&MailOp::Pickup(0), &MailOp::Pickup(0)));
        assert!(!spec.op_refines(&MailOp::Pickup(0), &MailOp::Unlock(0)));
    }

    #[test]
    fn crash_preserves_delivered_mail() {
        let mut r = SeqReplay::new(MailSpec { users: 1 });
        r.step_op(&MailOp::DeliverAs(0, "keep".into(), "m1".into()))
            .unwrap();
        r.step_crash().unwrap();
        assert_eq!(
            r.step_op(&MailOp::Pickup(0)).unwrap(),
            MailRet::Msgs(vec![("m1".into(), "keep".into())])
        );
    }
}
