//! The §9.3 workload generator: a closed loop per core, equal mix of
//! SMTP deliveries and POP3 pickups (pickup + delete + unlock), each
//! request choosing one of `users` uniformly at random — run against any
//! [`MailServer`], measuring total requests per second.

use crate::server::MailServer;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Workload parameters (defaults mirror §9.3).
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Number of user mailboxes requests are spread over (paper: 100).
    pub users: u64,
    /// Total requests across all cores (fixed as cores vary, per §9.3).
    pub total_requests: u64,
    /// Message body size in bytes.
    pub msg_len: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            users: 100,
            total_requests: 20_000,
            msg_len: 256,
            seed: 42,
        }
    }
}

/// Result of one workload run.
#[derive(Debug, Clone)]
pub struct WorkloadResult {
    /// Cores (closed-loop worker threads) used.
    pub cores: usize,
    /// Requests completed.
    pub requests: u64,
    /// Wall-clock time.
    pub elapsed: Duration,
}

impl WorkloadResult {
    /// Throughput in requests per second.
    pub fn req_per_sec(&self) -> f64 {
        self.requests as f64 / self.elapsed.as_secs_f64()
    }
}

/// Runs the closed-loop workload on `cores` threads against `server`.
///
/// Each worker repeatedly claims one request from the shared budget and
/// issues either a delivery or a pickup(+delete all+unlock) for a
/// uniformly random user, exactly the CMAIL experiment §9.3 replicates.
pub fn run_workload<S: MailServer + 'static>(
    server: Arc<S>,
    cores: usize,
    config: &WorkloadConfig,
) -> WorkloadResult {
    let remaining = Arc::new(AtomicU64::new(config.total_requests));
    let start = Instant::now();
    let mut handles = Vec::with_capacity(cores);
    for core in 0..cores {
        let server = Arc::clone(&server);
        let remaining = Arc::clone(&remaining);
        let users = config.users;
        let msg: Vec<u8> = vec![b'x'; config.msg_len];
        let seed = config.seed ^ ((core as u64) << 32);
        handles.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(seed);
            loop {
                // Claim one request from the shared budget.
                let prev = remaining.fetch_sub(1, Ordering::Relaxed);
                if prev == 0 || prev > u64::MAX / 2 {
                    remaining.fetch_add(1, Ordering::Relaxed);
                    break;
                }
                let user = rng.gen_range(0..users);
                if rng.gen_bool(0.5) {
                    server.deliver(user, &msg);
                } else {
                    let msgs = server.pickup(user);
                    for m in &msgs {
                        server.delete(user, &m.id);
                    }
                    server.unlock(user);
                }
            }
        }));
    }
    for h in handles {
        h.join().expect("workload worker");
    }
    WorkloadResult {
        cores,
        requests: config.total_requests,
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gomail::{CMailSim, GoMail};
    use crate::server::{mail_dirs, Mailboat};
    use goose_rt::fs::{FileSys, NativeFs};
    use goose_rt::runtime::NativeRt;

    fn small() -> WorkloadConfig {
        WorkloadConfig {
            users: 8,
            total_requests: 400,
            msg_len: 64,
            seed: 7,
        }
    }

    fn fs(users: u64) -> Arc<NativeFs> {
        let dirs = mail_dirs(users);
        let dir_refs: Vec<&str> = dirs.iter().map(String::as_str).collect();
        NativeFs::new(&dir_refs)
    }

    #[test]
    fn workload_runs_on_mailboat() {
        let cfg = small();
        let server = Arc::new(Mailboat::init(fs(cfg.users), NativeRt::new(), cfg.users).unwrap());
        let r = run_workload(server, 4, &cfg);
        assert_eq!(r.requests, 400);
        assert!(r.req_per_sec() > 0.0);
    }

    #[test]
    fn workload_runs_on_gomail_and_cmail() {
        let cfg = small();
        let g = Arc::new(GoMail::init(fs(cfg.users), NativeRt::new(), cfg.users).unwrap());
        let r = run_workload(g, 2, &cfg);
        assert_eq!(r.requests, 400);
        let c = Arc::new(CMailSim::init(fs(cfg.users), NativeRt::new(), cfg.users).unwrap());
        let r = run_workload(c, 2, &cfg);
        assert_eq!(r.requests, 400);
    }

    #[test]
    fn workload_preserves_mailbox_integrity() {
        // After the run, every remaining message is complete.
        let cfg = small();
        let fsys = fs(cfg.users);
        let server = Arc::new(
            Mailboat::init(fsys.clone() as Arc<dyn FileSys>, NativeRt::new(), cfg.users).unwrap(),
        );
        let _ = run_workload(Arc::clone(&server), 4, &cfg);
        for u in 0..cfg.users {
            for m in server.pickup(u) {
                assert_eq!(m.contents.len(), cfg.msg_len, "partial message survived");
            }
            server.unlock(u);
        }
        // The spool drains once all deliveries complete.
        assert!(fsys.list_path("spool").unwrap().is_empty());
    }
}
