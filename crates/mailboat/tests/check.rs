//! Model-checking Mailboat (§8): concurrency, crash sweeps, the §8.3
//! undefined-behaviour argument, and mutants.

use mailboat::harness::{MbHarness, MbWorkload};
use mailboat::proof::MbMutant;
use perennial_checker::{check, CheckConfig, ExecOutcome, Pass};

fn cfg() -> CheckConfig {
    CheckConfig::builder()
        .dfs_max_executions(250)
        .random_samples(10)
        .random_crash_samples(15)
        .without_passes([Pass::NestedCrash])
        .max_steps(200_000)
        .build()
}

fn cfg_no_crash() -> CheckConfig {
    CheckConfig::builder()
        .dfs_max_executions(400)
        .random_samples(20)
        .random_crash_samples(0)
        .without_passes([Pass::CrashSweep, Pass::NestedCrash])
        .max_steps(200_000)
        .build()
}

#[test]
fn deliver_vs_pickup_passes() {
    let report = check(&MbHarness::default(), &cfg());
    assert!(
        report.passed(),
        "counterexample: {:?}",
        report.counterexample
    );
    assert!(report.executions > 100);
    assert!(report.crashes_injected > 10);
}

#[test]
fn two_delivers_same_user_pass() {
    let h = MbHarness {
        workload: MbWorkload::TwoDelivers,
        ..MbHarness::default()
    };
    let report = check(&h, &cfg());
    assert!(
        report.passed(),
        "counterexample: {:?}",
        report.counterexample
    );
}

#[test]
fn two_users_with_pickup_pass() {
    let h = MbHarness {
        workload: MbWorkload::TwoUsers,
        ..MbHarness::default()
    };
    let report = check(&h, &cfg());
    assert!(
        report.passed(),
        "counterexample: {:?}",
        report.counterexample
    );
}

#[test]
fn single_deliver_crash_during_recovery() {
    // §5.5 idempotence for Mailboat's recovery (spool cleanup).
    let h = MbHarness {
        workload: MbWorkload::SingleDeliver,
        after_round: true,
        ..MbHarness::default()
    };
    let report = check(
        &h,
        &CheckConfig::builder()
            .dfs_max_executions(0)
            .random_samples(0)
            .random_crash_samples(0)
            .max_steps(200_000)
            .build(),
    );
    assert!(
        report.passed(),
        "counterexample: {:?}",
        report.counterexample
    );
}

#[test]
fn sec8_3_slice_race_is_flagged_as_ub() {
    // §8.3 "Exploiting undefined behaviour": a caller mutating the
    // message slice during Deliver is UB; the checker must find the
    // interleaving and classify it as such (not as a refinement bug).
    let h = MbHarness {
        workload: MbWorkload::SliceRace,
        after_round: false,
        ..MbHarness::default()
    };
    let report = check(&h, &cfg_no_crash());
    let cx = report.counterexample.expect("slice race must be detected");
    assert!(
        matches!(cx.outcome, ExecOutcome::Ub(_)),
        "expected UB, got {:?}",
        cx.outcome
    );
}

// ---------------------------------------------------------------------
// Mutants (DESIGN.md §8).
// ---------------------------------------------------------------------

#[test]
fn mutant_no_spool_caught() {
    // Direct writes into the mailbox let a concurrent pickup observe a
    // partial message (or a crash leave one behind).
    let h = MbHarness {
        mutant: MbMutant::NoSpool,
        ..MbHarness::default()
    };
    let report = check(&h, &cfg());
    let cx = report.counterexample.expect("no-spool must be caught");
    assert!(
        matches!(
            cx.outcome,
            ExecOutcome::Violation(_) | ExecOutcome::Bug(_) | ExecOutcome::FinalCheckFailed(_)
        ),
        "unexpected outcome {:?}",
        cx.outcome
    );
}

#[test]
fn mutant_commit_at_spool_caught() {
    // Premature linearization: a crash between the spool write and the
    // link loses a committed message.
    let h = MbHarness {
        workload: MbWorkload::SingleDeliver,
        mutant: MbMutant::CommitAtSpool,
        ..MbHarness::default()
    };
    let report = check(&h, &cfg());
    let cx = report
        .counterexample
        .expect("commit-at-spool must be caught");
    assert!(!cx.crash_points.is_empty(), "only reachable via a crash");
}

#[test]
fn mutant_skip_recovery_cleanup_caught() {
    let h = MbHarness {
        workload: MbWorkload::SingleDeliver,
        mutant: MbMutant::SkipRecoveryCleanup,
        ..MbHarness::default()
    };
    let report = check(&h, &cfg());
    let cx = report.counterexample.expect("skip-cleanup must be caught");
    assert!(
        matches!(cx.outcome, ExecOutcome::FinalCheckFailed(ref m) if m.contains("spool")),
        "unexpected outcome {:?}",
        cx.outcome
    );
    assert!(!cx.crash_points.is_empty(), "only reachable via a crash");
}

#[test]
fn mutant_delete_without_lock_caught() {
    let h = MbHarness {
        mutant: MbMutant::DeleteWithoutLock,
        ..MbHarness::default()
    };
    let report = check(&h, &cfg_no_crash());
    let cx = report
        .counterexample
        .expect("delete-without-lock must be caught");
    assert!(
        matches!(cx.outcome, ExecOutcome::Violation(_) | ExecOutcome::Bug(_)),
        "unexpected outcome {:?}",
        cx.outcome
    );
}

// ---------------------------------------------------------------------
// Net-fault sweeps: the courier over the unreliable model channel.
// ---------------------------------------------------------------------

fn cfg_faults() -> CheckConfig {
    CheckConfig::builder()
        .dfs_max_executions(0)
        .random_samples(0)
        .random_crash_samples(0)
        .without_passes([Pass::NestedCrash])
        .max_steps(200_000)
        .with_passes([Pass::DiskFault, Pass::TornWrite, Pass::NetFault])
        .build()
}

#[test]
fn net_deliver_passes_with_and_without_faults() {
    // The deduplicating courier is correct under a reliable channel and
    // under every single-fault plan (drop, duplicate, delay).
    let h = MbHarness {
        workload: MbWorkload::NetDeliver,
        ..MbHarness::default()
    };
    let report = check(&h, &cfg());
    assert!(report.passed(), "reliable: {:?}", report.counterexample);
    let report = check(&h, &cfg_faults());
    assert!(report.passed(), "faulty: {:?}", report.counterexample);
}

#[test]
fn net_no_dedup_invisible_without_fault_sweep() {
    // A reliable channel never duplicates, so the missing dedup is
    // unobservable without the net-fault sweep.
    let h = MbHarness {
        mutant: MbMutant::NetNoDedup,
        workload: MbWorkload::NetDeliver,
        ..MbHarness::default()
    };
    let report = check(&h, &cfg());
    assert!(
        report.passed(),
        "plain sweeps should NOT catch net-no-dedup: {:?}",
        report.counterexample
    );
}

#[test]
fn net_no_dedup_caught_by_net_fault_sweep() {
    let h = MbHarness {
        mutant: MbMutant::NetNoDedup,
        workload: MbWorkload::NetDeliver,
        ..MbHarness::default()
    };
    let report = check(&h, &cfg_faults());
    let cx = report
        .counterexample
        .expect("net-fault sweep must catch net-no-dedup");
    assert_eq!(cx.pass, "net-fault-sweep");
    assert!(!cx.faults.is_empty(), "counterexample records the plan");
    assert!(
        matches!(cx.outcome, ExecOutcome::Bug(_)),
        "duplicate delivery trips the courier's at-most-once assert: {:?}",
        cx.outcome
    );
}
