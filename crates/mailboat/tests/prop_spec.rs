//! Property tests for the Mailboat specification: random well-formed op
//! sequences replay against a reference mailbox model, and the refine-
//! ment relation behaves like the paper describes.

use mailboat::spec::{MailOp, MailRet, MailSpec};
use perennial_spec::system::SeqReplay;
use perennial_spec::SpecTS;
use proptest::prelude::*;
use std::collections::BTreeMap;

const USERS: u64 = 3;

#[derive(Debug, Clone)]
enum Step {
    Deliver(u64, String),
    PickupAll(u64),
    DeleteOldest(u64),
    Crash,
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0..USERS, "[a-z]{1,6}").prop_map(|(u, m)| Step::Deliver(u, m)),
        (0..USERS).prop_map(Step::PickupAll),
        (0..USERS).prop_map(Step::DeleteOldest),
        Just(Step::Crash),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The spec tracks a reference model under random scripts; message
    /// IDs are assigned sequentially by the driver (playing the
    /// implementation's role of choosing fresh names).
    #[test]
    fn spec_tracks_reference(script in proptest::collection::vec(arb_step(), 0..40)) {
        let mut r = SeqReplay::new(MailSpec { users: USERS });
        let mut reference: BTreeMap<u64, BTreeMap<String, String>> =
            (0..USERS).map(|u| (u, BTreeMap::new())).collect();
        let mut next_id = 0u64;

        for step in &script {
            match step {
                Step::Deliver(u, m) => {
                    let id = format!("m{next_id:04}");
                    next_id += 1;
                    r.step_op(&MailOp::DeliverAs(*u, m.clone(), id.clone())).unwrap();
                    reference.get_mut(u).unwrap().insert(id, m.clone());
                }
                Step::PickupAll(u) => {
                    let got = r.step_op(&MailOp::Pickup(*u)).unwrap();
                    let expect: Vec<(String, String)> = reference[u]
                        .iter()
                        .map(|(k, v)| (k.clone(), v.clone()))
                        .collect();
                    prop_assert_eq!(got, MailRet::Msgs(expect));
                    r.step_op(&MailOp::Unlock(*u)).unwrap();
                }
                Step::DeleteOldest(u) => {
                    if let Some(id) = reference[u].keys().next().cloned() {
                        r.step_op(&MailOp::Delete(*u, id.clone())).unwrap();
                        reference.get_mut(u).unwrap().remove(&id);
                    }
                }
                Step::Crash => {
                    // Mail delivery is durable: the crash transition
                    // changes nothing.
                    let before = r.state().clone();
                    r.step_crash().unwrap();
                    prop_assert_eq!(r.state(), &before);
                }
            }
        }
    }

    /// op_refines accepts exactly the id-resolutions of the same
    /// invocation and nothing else.
    #[test]
    fn refinement_relation_is_tight(
        u1 in 0..USERS, u2 in 0..USERS,
        m1 in "[a-z]{1,4}", m2 in "[a-z]{1,4}",
        id in "[a-z0-9]{1,6}"
    ) {
        let spec = MailSpec { users: USERS };
        let invoked = MailOp::Deliver(u1, m1.clone());
        let committed = MailOp::DeliverAs(u2, m2.clone(), id);
        let accepted = spec.op_refines(&invoked, &committed);
        prop_assert_eq!(accepted, u1 == u2 && m1 == m2);
        // Non-Deliver ops refine only to themselves.
        let p = MailOp::Pickup(u1);
        prop_assert!(spec.op_refines(&p, &p.clone()));
        prop_assert!(!spec.op_refines(&p, &MailOp::Unlock(u1)));
    }

    /// Duplicate-ID deliveries are disabled (blocked), never UB, and
    /// never clobber existing mail.
    #[test]
    fn duplicate_ids_never_clobber(u in 0..USERS, m1 in "[a-z]{1,4}", m2 in "[a-z]{1,4}") {
        let mut r = SeqReplay::new(MailSpec { users: USERS });
        r.step_op(&MailOp::DeliverAs(u, m1.clone(), "dup".into())).unwrap();
        let second = r.step_op(&MailOp::DeliverAs(u, m2.clone(), "dup".into()));
        prop_assert!(second.is_err());
        let got = r.step_op(&MailOp::Pickup(u)).unwrap();
        prop_assert_eq!(got, MailRet::Msgs(vec![("dup".into(), m1.clone())]));
    }
}
