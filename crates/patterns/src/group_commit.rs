//! The group-commit pattern (§9.1): transactions are buffered in memory
//! and committed to disk in batches, amortizing the cost of commit at the
//! price of *losing buffered transactions on crash* — which the
//! specification says explicitly, via a crash transition that truncates
//! the un-persisted suffix.
//!
//! Disk layout (block size 8):
//!
//! ```text
//! block 0: count of persisted entries
//! blocks 1..=CAP: one entry per block, in append order
//! ```
//!
//! `append` linearizes immediately (the entry is in the logical log even
//! though it is volatile); `flush` persists the buffered suffix and then
//! advances the spec's `persisted` watermark via an *internal* spec
//! transition adjacent to the count-block write. The crash transition
//! then truncates precisely the entries beyond the watermark.

use goose_rt::fault::FaultSurface;
use goose_rt::runtime::{GLock, ModelRtExt};
use parking_lot::{Mutex, RwLock};
use perennial::{DurId, GhostUnwrap, Lease, LockInv};
use perennial_checker::{Execution, Harness, ThreadBody, World};
use perennial_disk::buffered::BufferedDisk;
use perennial_disk::single::SingleDisk;
use perennial_spec::{SpecTS, Transition};
use std::sync::Arc;

/// Maximum entries the on-disk log holds.
pub const CAP: u64 = 8;

/// Abstract state of the group-commit log.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct GcState {
    /// The logical log (including buffered entries).
    pub entries: Vec<u64>,
    /// How many leading entries are durable.
    pub persisted: usize,
}

/// Operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GcOp {
    /// Append an entry (buffered until the next flush).
    Append(u64),
    /// Read the whole logical log.
    ReadAll,
}

/// Return values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GcRet {
    /// `Append` acknowledgement.
    Done,
    /// `ReadAll` result.
    Entries(Vec<u64>),
}

/// The group-commit specification.
#[derive(Debug, Clone, Default)]
pub struct GcSpec;

impl GcSpec {
    /// The internal flush transition: everything buffered becomes
    /// durable.
    pub fn flush_transition() -> Transition<GcState, ()> {
        Transition::modify(|s: &GcState| {
            let mut s = s.clone();
            s.persisted = s.entries.len();
            s
        })
    }
}

impl SpecTS for GcSpec {
    type State = GcState;
    type Op = GcOp;
    type Ret = GcRet;

    fn init(&self) -> GcState {
        GcState::default()
    }

    fn op_transition(&self, op: &GcOp) -> Transition<GcState, GcRet> {
        match op.clone() {
            GcOp::Append(v) => {
                Transition::gets(|s: &GcState| s.entries.len() as u64).and_then(move |len| {
                    if len >= CAP {
                        // Appending past capacity is caller UB.
                        Transition::undefined()
                    } else {
                        Transition::modify(move |s: &GcState| {
                            let mut s = s.clone();
                            s.entries.push(v);
                            s
                        })
                        .map(|()| GcRet::Done)
                    }
                })
            }
            GcOp::ReadAll => Transition::gets(|s: &GcState| GcRet::Entries(s.entries.clone())),
        }
    }

    /// The crash transition drops the un-persisted suffix — this is the
    /// "specifies when transactions can be lost" of §9.1.
    fn crash_transition(&self) -> Transition<GcState, ()> {
        Transition::modify(|s: &GcState| {
            let mut s = s.clone();
            s.entries.truncate(s.persisted);
            s
        })
    }
}

/// Deliberate bugs for mutation tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GcMutant {
    /// The correct system.
    None,
    /// Write the count block before the entry blocks (a crash in between
    /// makes recovery read garbage entries as persisted).
    CountFirst,
    /// Acknowledge appends as durable: advance the spec watermark at
    /// append time without writing anything (crash loses acknowledged
    /// durability).
    FakeDurability,
}

/// Ghost bundle protected by the global lock.
pub struct GcBundle {
    leases: Vec<Lease<Vec<u8>>>,
}

/// The instrumented group-commit log.
pub struct GroupCommitLog {
    mutant: GcMutant,
    disk: Arc<BufferedDisk>,
    cells: Vec<DurId<Vec<u8>>>,
    lockinv: Arc<LockInv<GcBundle>>,
    lock: RwLock<Option<Arc<dyn GLock>>>,
    /// Volatile: entries appended since the last flush. Cleared at boot.
    buffer: Mutex<Vec<u64>>,
}

fn enc(v: u64) -> Vec<u8> {
    v.to_le_bytes().to_vec()
}

fn dec(b: &[u8]) -> u64 {
    u64::from_le_bytes(b[..8].try_into().expect("short block"))
}

impl GroupCommitLog {
    /// Blocks used by the pattern.
    pub const NBLOCKS: u64 = CAP + 1;

    /// Sets up ghost resources over a fresh disk.
    pub fn new(w: &World<GcSpec>, disk: Arc<BufferedDisk>, mutant: GcMutant) -> Self {
        let mut cells = Vec::new();
        let mut leases = Vec::new();
        for _ in 0..Self::NBLOCKS {
            let (c, l) = w.ghost.alloc_durable(vec![0u8; 8]);
            cells.push(c);
            leases.push(l);
        }
        GroupCommitLog {
            mutant,
            disk,
            cells,
            lockinv: Arc::new(LockInv::new(GcBundle { leases })),
            lock: RwLock::new(None),
            buffer: Mutex::new(Vec::new()),
        }
    }

    /// Rebuilds volatile state at boot: a fresh lock and an empty buffer
    /// (buffered transactions are lost — that is the point).
    pub fn boot(&self, w: &World<GcSpec>) {
        *self.lock.write() = Some(w.rt.new_glock());
        self.buffer.lock().clear();
    }

    fn lock(&self) -> Arc<dyn GLock> {
        Arc::clone(self.lock.read().as_ref().expect("boot() not called"))
    }

    /// Appends an entry. Linearizes immediately (at the buffer insert);
    /// durability comes only from a later flush.
    pub fn append(&self, w: &World<GcSpec>, v: u64) {
        let tok = w.ghost.begin_op(GcOp::Append(v)).ghost_unwrap();
        let lock = self.lock();
        lock.acquire();
        // The buffer insert is the linearization point.
        self.buffer.lock().push(v);
        let ret = w.ghost.commit_op(&tok).ghost_unwrap();
        if self.mutant == GcMutant::FakeDurability {
            // Lie: advance the durable watermark without touching disk.
            w.ghost
                .internal_step(&GcSpec::flush_transition())
                .ghost_unwrap();
        }
        lock.release();
        w.ghost.finish_op(tok, &ret).ghost_unwrap();
    }

    /// Flushes buffered entries to disk as one batch (the amortization).
    pub fn flush(&self, w: &World<GcSpec>) {
        let lock = self.lock();
        lock.acquire();
        let mut bundle = self.lockinv.take().ghost_unwrap();
        let persisted = dec(&self.disk.read(0)) as usize;
        let buffered: Vec<u64> = self.buffer.lock().clone();

        if self.mutant == GcMutant::CountFirst {
            let n = persisted + buffered.len();
            self.disk.write_through(0, &enc(n as u64));
            w.ghost
                .write_durable(self.cells[0], &mut bundle.leases[0], enc(n as u64))
                .ghost_unwrap();
            w.ghost
                .internal_step(&GcSpec::flush_transition())
                .ghost_unwrap();
            for (i, v) in buffered.iter().enumerate() {
                let blk = (persisted + i + 1) as u64;
                self.disk.write(blk, &enc(*v));
                w.ghost
                    .write_durable(
                        self.cells[blk as usize],
                        &mut bundle.leases[blk as usize],
                        enc(*v),
                    )
                    .ghost_unwrap();
            }
            self.disk.flush();
        } else {
            // Entry blocks first, flushed durable…
            for (i, v) in buffered.iter().enumerate() {
                let blk = (persisted + i + 1) as u64;
                self.disk.write(blk, &enc(*v));
                w.ghost
                    .write_durable(
                        self.cells[blk as usize],
                        &mut bundle.leases[blk as usize],
                        enc(*v),
                    )
                    .ghost_unwrap();
            }
            self.disk.flush();
            // …then the count block: the durability point, a single
            // write-through. The internal spec step advancing the
            // watermark is adjacent.
            let n = persisted + buffered.len();
            self.disk.write_through(0, &enc(n as u64));
            w.ghost
                .write_durable(self.cells[0], &mut bundle.leases[0], enc(n as u64))
                .ghost_unwrap();
            w.ghost
                .internal_step(&GcSpec::flush_transition())
                .ghost_unwrap();
        }

        self.buffer.lock().clear();
        self.lockinv.put(bundle).ghost_unwrap();
        lock.release();
    }

    /// Reads the whole logical log (durable prefix plus buffer).
    pub fn read_all(&self, w: &World<GcSpec>) -> Vec<u64> {
        let tok = w.ghost.begin_op(GcOp::ReadAll).ghost_unwrap();
        let lock = self.lock();
        lock.acquire();
        let bundle = self.lockinv.take().ghost_unwrap();
        let persisted = dec(&self.disk.read(0)) as usize;
        let mut out = Vec::new();
        for i in 0..persisted {
            out.push(dec(&self.disk.read(i as u64 + 1)));
        }
        out.extend(self.buffer.lock().iter().copied());
        let ret = w.ghost.commit_op(&tok).ghost_unwrap();
        self.lockinv.put(bundle).ghost_unwrap();
        lock.release();
        w.ghost
            .finish_op(tok, &GcRet::Entries(out.clone()))
            .ghost_unwrap();
        match ret {
            GcRet::Entries(spec) => {
                debug_assert_eq!(spec, out);
                out
            }
            GcRet::Done => unreachable!("read committed an append transition"),
        }
    }

    /// Crash transition for the disk: drop (or tear) the volatile write
    /// buffer per the execution's fault plan.
    pub fn crash(&self) {
        self.disk.crash_torn();
    }

    /// Recovery: the durable prefix is already consistent; re-establish
    /// leases and spend the crash token (whose spec transition truncates
    /// the buffered suffix).
    pub fn recover(&self, w: &World<GcSpec>) {
        let mut leases = Vec::new();
        for c in &self.cells {
            leases.push(w.ghost.recover_lease(*c).ghost_unwrap());
        }
        self.lockinv.reset(GcBundle { leases });
        w.ghost.recovery_done().ghost_unwrap();
    }

    /// AbsR at quiescence: disk prefix + buffer equals σ's entries, and
    /// the persisted watermark matches the count block.
    pub fn abs_check(&self, w: &World<GcSpec>) -> Result<(), String> {
        let sigma = w.ghost.spec_state();
        let persisted = dec(&self.disk.peek(0)) as usize;
        let mut log = Vec::new();
        for i in 0..persisted {
            log.push(dec(&self.disk.peek(i as u64 + 1)));
        }
        log.extend(self.buffer.lock().iter().copied());
        if log != sigma.entries {
            return Err(format!(
                "AbsR violated: disk+buffer {log:?}, spec {:?}",
                sigma.entries
            ));
        }
        if persisted > sigma.entries.len() || persisted != sigma.persisted {
            return Err(format!(
                "AbsR violated: disk watermark {persisted}, spec watermark {}",
                sigma.persisted
            ));
        }
        Ok(())
    }
}

/// Checker harness for group commit.
pub struct GcHarness {
    /// Which mutant to run.
    pub mutant: GcMutant,
}

impl Default for GcHarness {
    fn default() -> Self {
        GcHarness {
            mutant: GcMutant::None,
        }
    }
}

struct GcExec {
    sys: Arc<GroupCommitLog>,
}

impl Execution<GcSpec> for GcExec {
    fn boot(&mut self, w: &World<GcSpec>) {
        self.sys.boot(w);
    }

    fn threads(&mut self, w: &World<GcSpec>) -> Vec<(String, ThreadBody)> {
        let mut out: Vec<(String, ThreadBody)> = Vec::new();
        let sys = Arc::clone(&self.sys);
        let w2 = w.clone();
        out.push((
            "appender-a".into(),
            Box::new(move || {
                sys.append(&w2, 1);
                sys.append(&w2, 2);
            }),
        ));
        let sys = Arc::clone(&self.sys);
        let w2 = w.clone();
        out.push((
            "flusher".into(),
            Box::new(move || {
                sys.flush(&w2);
                sys.append(&w2, 3);
                sys.flush(&w2);
            }),
        ));
        let sys = Arc::clone(&self.sys);
        let w2 = w.clone();
        out.push((
            "reader".into(),
            Box::new(move || {
                let _ = sys.read_all(&w2);
            }),
        ));
        out
    }

    fn crash_reset(&mut self, _w: &World<GcSpec>) {
        self.sys.crash();
    }

    fn recovery(&mut self, w: &World<GcSpec>) -> ThreadBody {
        let sys = Arc::clone(&self.sys);
        let w2 = w.clone();
        Box::new(move || sys.recover(&w2))
    }

    fn after_recovery(&mut self, w: &World<GcSpec>) -> Vec<(String, ThreadBody)> {
        let sys = Arc::clone(&self.sys);
        let w2 = w.clone();
        vec![(
            "post-crash".into(),
            Box::new(move || {
                // Whatever survived, appending and flushing still works
                // and reads reflect the spec.
                let before = sys.read_all(&w2);
                sys.append(&w2, 9);
                sys.flush(&w2);
                let after = sys.read_all(&w2);
                assert_eq!(after.len(), before.len() + 1);
                assert_eq!(*after.last().unwrap(), 9);
            }),
        )]
    }

    fn final_check(&self, w: &World<GcSpec>) -> Result<(), String> {
        self.sys.abs_check(w)
    }
}

impl Harness<GcSpec> for GcHarness {
    fn spec(&self) -> GcSpec {
        GcSpec
    }

    fn make(&self, w: &World<GcSpec>) -> Box<dyn Execution<GcSpec>> {
        let disk = BufferedDisk::new(Arc::clone(&w.rt), GroupCommitLog::NBLOCKS, 8);
        let sys = GroupCommitLog::new(w, disk, self.mutant);
        Box::new(GcExec { sys: Arc::new(sys) })
    }

    fn name(&self) -> &str {
        "group commit"
    }

    fn fault_surface(&self) -> FaultSurface {
        FaultSurface {
            transient_disk_io: true,
            torn_writes: true,
            ..FaultSurface::none()
        }
    }
}
