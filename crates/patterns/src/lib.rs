//! The three crash-safety patterns of §9.1 (Table 3), each verified with
//! the checker: storage systems broadly use **replication** (see the
//! `repldisk` crate), **shadow copies**, and **write-ahead logging**
//! [Gray 1978]; plus the **group commit** optimization with its
//! weaker crash specification.
//!
//! Each pattern module contains the instrumented implementation (the
//! runtime analog of the paper's per-pattern proof), its checker harness,
//! and mutants for the mutation tests in `tests/check.rs`.

pub mod group_commit;
pub mod pair_spec;
pub mod shadow;
pub mod synced_log;
pub mod txn_wal;
pub mod wal;

pub use group_commit::{GcHarness, GcMutant, GcSpec, GroupCommitLog};
pub use pair_spec::{PairOp, PairRet, PairSpec};
pub use shadow::{ShadowHarness, ShadowMutant, ShadowPair};
pub use synced_log::{SlHarness, SlMutant, SyncedLog};
pub use txn_wal::{TxnHarness, TxnMutant, TxnWal};
pub use wal::{WalHarness, WalMutant, WalPair};
