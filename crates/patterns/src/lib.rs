//! The three crash-safety patterns of §9.1 (Table 3), each verified with
//! the checker: storage systems broadly use **replication** (see the
//! `repldisk` crate), **shadow copies**, and **write-ahead logging**
//! [Gray 1978]; plus the **group commit** optimization with its
//! weaker crash specification.
//!
//! Each pattern module contains the instrumented implementation (the
//! runtime analog of the paper's per-pattern proof), its checker harness,
//! and mutants for the mutation tests in `tests/check.rs`.

pub mod group_commit;
pub mod pair_spec;
pub mod shadow;
pub mod synced_log;
pub mod txn_wal;
pub mod wal;

pub use group_commit::{GcHarness, GcMutant, GcSpec, GroupCommitLog};
pub use pair_spec::{PairOp, PairRet, PairSpec};
pub use shadow::{ShadowHarness, ShadowMutant, ShadowPair};
pub use synced_log::{SlHarness, SlMutant, SyncedLog};
pub use txn_wal::{TxnHarness, TxnMutant, TxnWal};
pub use wal::{WalHarness, WalMutant, WalPair};

use perennial_checker::ScenarioSet;

/// The crate's expected-pass scenarios (each pattern's correct
/// implementation under its default workload), under the registry names
/// `"patterns/..."`.
pub fn scenarios() -> ScenarioSet {
    let mut set = ScenarioSet::new();
    set.add(
        "patterns/shadow",
        "shadow-copy pair update",
        ShadowHarness::default(),
    );
    set.add(
        "patterns/wal",
        "write-ahead-logged pair update",
        WalHarness::default(),
    );
    set.add(
        "patterns/txn-wal",
        "transactional WAL over two addresses",
        TxnHarness::default(),
    );
    set.add(
        "patterns/group-commit",
        "group commit with deferred durability",
        GcHarness::default(),
    );
    set.add(
        "patterns/synced-log",
        "synced log with deferred durability",
        SlHarness::default(),
    );
    set
}

/// The crate's expected-fail scenarios (mutants the checker must catch),
/// under the registry names `"patterns/mutant/..."`.
pub fn mutant_scenarios() -> ScenarioSet {
    let mut set = ScenarioSet::new();
    for (name, desc, mutant) in [
        (
            "patterns/mutant/shadow-flip-first",
            "flip install pointer first",
            ShadowMutant::FlipFirst,
        ),
        (
            "patterns/mutant/shadow-in-place",
            "update in place",
            ShadowMutant::InPlace,
        ),
    ] {
        set.add(
            name,
            desc,
            ShadowHarness {
                mutant,
                with_reader: false,
            },
        );
    }
    for (name, desc, mutant) in [
        (
            "patterns/mutant/wal-skip-recovery-apply",
            "recovery skips committed txn",
            WalMutant::SkipRecoveryApply,
        ),
        (
            "patterns/mutant/wal-header-first",
            "header before log entries",
            WalMutant::HeaderFirst,
        ),
        (
            "patterns/mutant/wal-skip-helping",
            "no helping token",
            WalMutant::SkipHelping,
        ),
        (
            "patterns/mutant/wal-skip-commit-flush",
            "no flush barrier before the commit header",
            WalMutant::SkipCommitFlush,
        ),
    ] {
        set.add(
            name,
            desc,
            WalHarness {
                mutant,
                with_reader: false,
            },
        );
    }
    for (name, desc, mutant) in [
        (
            "patterns/mutant/gc-count-first",
            "count block before entries",
            GcMutant::CountFirst,
        ),
        (
            "patterns/mutant/gc-fake-durability",
            "fake durability ack",
            GcMutant::FakeDurability,
        ),
    ] {
        set.add(name, desc, GcHarness { mutant });
    }
    for (name, desc, mutant) in [
        (
            "patterns/mutant/txn-no-log",
            "no log at all",
            TxnMutant::NoLog,
        ),
        (
            "patterns/mutant/txn-header-first",
            "header before entries",
            TxnMutant::HeaderFirst,
        ),
        (
            "patterns/mutant/txn-partial-recovery",
            "partial recovery apply",
            TxnMutant::PartialRecoveryApply,
        ),
    ] {
        set.add(
            name,
            desc,
            TxnHarness {
                mutant,
                with_reader: false,
            },
        );
    }
    for (name, desc, mutant) in [
        (
            "patterns/mutant/sl-skip-fsync",
            "skip fsync",
            SlMutant::SkipFsync,
        ),
        (
            "patterns/mutant/sl-skip-dir-sync",
            "skip dir sync",
            SlMutant::SkipDirSync,
        ),
    ] {
        set.add(name, desc, SlHarness { mutant });
    }
    // Not a bug in the code under test but in the *scenario*: crash_reset
    // panics. Campaigns must isolate it (ExecOutcome::HarnessPanic) and
    // keep going — pinned by tests/shard_resume.rs and tests/reduction.rs.
    set.add(
        "patterns/mutant/panic-reset",
        "harness crash_reset panics (campaign isolation)",
        perennial_checker::PanicOnReset::new(
            "patterns/mutant/panic-reset",
            ShadowHarness::default(),
        ),
    );
    set
}
