//! The atomic-pair specification shared by the shadow-copy and
//! write-ahead-log patterns (§9.1): a pair of values that must update
//! atomically — after any crash, readers see either the old pair or the
//! new pair, never a mix.

use perennial_spec::{SpecTS, Transition};

/// Abstract state: the current pair.
pub type Pair = (u64, u64);

/// Operations on the atomic pair store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PairOp {
    /// Atomically replace both values.
    Put(u64, u64),
    /// Read both values.
    Get,
}

/// Return values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PairRet {
    /// `Put` acknowledgement.
    Unit,
    /// `Get` result.
    Val(u64, u64),
}

/// The atomic-pair spec. Crash loses nothing (both patterns make the
/// update durable before acknowledging).
#[derive(Debug, Clone, Default)]
pub struct PairSpec;

impl SpecTS for PairSpec {
    type State = Pair;
    type Op = PairOp;
    type Ret = PairRet;

    fn init(&self) -> Pair {
        (0, 0)
    }

    fn op_transition(&self, op: &PairOp) -> Transition<Pair, PairRet> {
        match *op {
            PairOp::Put(a, b) => Transition::modify(move |_: &Pair| (a, b)).map(|()| PairRet::Unit),
            PairOp::Get => Transition::gets(|s: &Pair| PairRet::Val(s.0, s.1)),
        }
    }

    fn crash_transition(&self) -> Transition<Pair, ()> {
        Transition::skip()
    }
}

/// Encodes a value into a block (blocks are 8 bytes in these patterns).
pub fn enc(v: u64) -> Vec<u8> {
    v.to_le_bytes().to_vec()
}

/// Decodes a block back to a value.
pub fn dec(b: &[u8]) -> u64 {
    u64::from_le_bytes(b[..8].try_into().expect("block too short"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use perennial_spec::system::SeqReplay;

    #[test]
    fn put_then_get() {
        let mut r = SeqReplay::new(PairSpec);
        assert_eq!(r.step_op(&PairOp::Get).unwrap(), PairRet::Val(0, 0));
        r.step_op(&PairOp::Put(3, 4)).unwrap();
        r.step_crash().unwrap();
        assert_eq!(r.step_op(&PairOp::Get).unwrap(), PairRet::Val(3, 4));
    }

    #[test]
    fn enc_dec_roundtrip() {
        for v in [0u64, 1, u64::MAX, 0xdead_beef] {
            assert_eq!(dec(&enc(v)), v);
        }
    }
}
