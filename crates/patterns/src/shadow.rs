//! The shadow-copy pattern (§9.1): atomic update of a pair of disk
//! blocks by writing a fresh copy and atomically flipping an install
//! pointer.
//!
//! Disk layout (block size 8):
//!
//! ```text
//! block 0: install pointer (0 → copy A is live, 1 → copy B is live)
//! blocks 1,2: copy A
//! blocks 3,4: copy B
//! ```
//!
//! `put` writes the *inactive* copy, then flips the pointer — a single
//! atomic block write, which is the linearization point. A crash before
//! the flip leaves the half-written shadow invisible (Mailboat's spool
//! files use the same idea, §9.1); recovery has nothing to repair beyond
//! re-establishing leases.

use crate::pair_spec::{dec, enc, PairOp, PairRet, PairSpec};
use goose_rt::fault::FaultSurface;
use goose_rt::runtime::{GLock, ModelRtExt};
use parking_lot::RwLock;
use perennial::{DurId, GhostUnwrap, Lease, LockInv};
use perennial_checker::{Execution, Harness, ThreadBody, World};
use perennial_disk::buffered::BufferedDisk;
use perennial_disk::single::SingleDisk;
use std::sync::Arc;

/// Deliberate bugs for mutation tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShadowMutant {
    /// The correct system.
    None,
    /// Flip the install pointer *before* writing the shadow copy — a
    /// crash in between exposes a torn pair.
    FlipFirst,
    /// Write the new values directly over the live copy (no shadow at
    /// all) — a crash between the two writes exposes a torn pair.
    InPlace,
}

/// Ghost bundle protected by the global lock: leases for all five blocks.
pub struct ShadowBundle {
    leases: Vec<Lease<Vec<u8>>>,
}

/// The instrumented shadow-copy pair store.
pub struct ShadowPair {
    mutant: ShadowMutant,
    disk: Arc<BufferedDisk>,
    cells: Vec<DurId<Vec<u8>>>,
    lockinv: Arc<LockInv<ShadowBundle>>,
    lock: RwLock<Option<Arc<dyn GLock>>>,
}

impl ShadowPair {
    /// Blocks used by the pattern.
    pub const NBLOCKS: u64 = 5;

    /// Sets up ghost resources over a fresh 5-block disk.
    pub fn new(w: &World<PairSpec>, disk: Arc<BufferedDisk>, mutant: ShadowMutant) -> Self {
        let mut cells = Vec::new();
        let mut leases = Vec::new();
        for _ in 0..Self::NBLOCKS {
            let (c, l) = w.ghost.alloc_durable(vec![0u8; 8]);
            cells.push(c);
            leases.push(l);
        }
        ShadowPair {
            mutant,
            disk,
            cells,
            lockinv: Arc::new(LockInv::new(ShadowBundle { leases })),
            lock: RwLock::new(None),
        }
    }

    /// Rebuilds the in-memory lock at boot.
    pub fn boot(&self, w: &World<PairSpec>) {
        *self.lock.write() = Some(w.rt.new_glock());
    }

    fn lock(&self) -> Arc<dyn GLock> {
        Arc::clone(self.lock.read().as_ref().expect("boot() not called"))
    }

    fn write_block(&self, w: &World<PairSpec>, bundle: &mut ShadowBundle, block: u64, v: u64) {
        self.disk.write(block, &enc(v));
        w.ghost
            .write_durable(
                self.cells[block as usize],
                &mut bundle.leases[block as usize],
                enc(v),
            )
            .ghost_unwrap();
    }

    /// Atomically replaces the pair.
    pub fn put(&self, w: &World<PairSpec>, a: u64, b: u64) {
        let tok = w.ghost.begin_op(PairOp::Put(a, b)).ghost_unwrap();
        let lock = self.lock();
        lock.acquire();
        let mut bundle = self.lockinv.take().ghost_unwrap();

        match self.mutant {
            ShadowMutant::None => {
                let live = dec(&self.disk.read(0));
                let (dst1, dst2, flip) = if live == 0 { (3, 4, 1) } else { (1, 2, 0) };
                // Write the shadow copy (invisible until installed) and
                // flush it durable before the install.
                self.write_block(w, &mut bundle, dst1, a);
                self.write_block(w, &mut bundle, dst2, b);
                self.disk.flush();
                // Flip the install pointer: the linearization point; the
                // ghost commit is adjacent to the atomic write-through.
                self.disk.write_through(0, &enc(flip));
                w.ghost
                    .write_durable(self.cells[0], &mut bundle.leases[0], enc(flip))
                    .ghost_unwrap();
                let ret = w.ghost.commit_op(&tok).ghost_unwrap();
                self.lockinv.put(bundle).ghost_unwrap();
                lock.release();
                w.ghost.finish_op(tok, &ret).ghost_unwrap();
            }
            ShadowMutant::FlipFirst => {
                let live = dec(&self.disk.read(0));
                let (dst1, dst2, flip) = if live == 0 { (3, 4, 1) } else { (1, 2, 0) };
                self.disk.write_through(0, &enc(flip));
                w.ghost
                    .write_durable(self.cells[0], &mut bundle.leases[0], enc(flip))
                    .ghost_unwrap();
                let ret = w.ghost.commit_op(&tok).ghost_unwrap();
                self.write_block(w, &mut bundle, dst1, a);
                self.write_block(w, &mut bundle, dst2, b);
                self.lockinv.put(bundle).ghost_unwrap();
                lock.release();
                w.ghost.finish_op(tok, &ret).ghost_unwrap();
            }
            ShadowMutant::InPlace => {
                let live = dec(&self.disk.read(0));
                let (dst1, dst2) = if live == 0 { (1, 2) } else { (3, 4) };
                self.write_block(w, &mut bundle, dst1, a);
                let ret = w.ghost.commit_op(&tok).ghost_unwrap();
                self.write_block(w, &mut bundle, dst2, b);
                self.lockinv.put(bundle).ghost_unwrap();
                lock.release();
                w.ghost.finish_op(tok, &ret).ghost_unwrap();
            }
        }
    }

    /// Reads the pair.
    pub fn get(&self, w: &World<PairSpec>) -> (u64, u64) {
        let tok = w.ghost.begin_op(PairOp::Get).ghost_unwrap();
        let lock = self.lock();
        lock.acquire();
        let bundle = self.lockinv.take().ghost_unwrap();
        let live = dec(&self.disk.read(0));
        let (src1, src2) = if live == 0 { (1, 2) } else { (3, 4) };
        let a = dec(&self.disk.read(src1));
        // The last read is the linearization point (commit adjacent).
        let b = dec(&self.disk.read(src2));
        let ret = w.ghost.commit_op(&tok).ghost_unwrap();
        self.lockinv.put(bundle).ghost_unwrap();
        lock.release();
        w.ghost.finish_op(tok, &PairRet::Val(a, b)).ghost_unwrap();
        match ret {
            PairRet::Val(x, y) => (x, y),
            PairRet::Unit => unreachable!("get committed a put transition"),
        }
    }

    /// Crash transition for the disk: drop (or tear) the volatile write
    /// buffer per the execution's fault plan.
    pub fn crash(&self) {
        self.disk.crash_torn();
    }

    /// Recovery: nothing to repair — an uninstalled shadow is invisible.
    /// Re-establishes leases and spends the crash token.
    pub fn recover(&self, w: &World<PairSpec>) {
        let mut leases = Vec::new();
        for c in &self.cells {
            leases.push(w.ghost.recover_lease(*c).ghost_unwrap());
        }
        self.lockinv.reset(ShadowBundle { leases });
        w.ghost.recovery_done().ghost_unwrap();
    }

    /// AbsR at quiescence: the live copy equals σ.
    pub fn abs_check(&self, w: &World<PairSpec>) -> Result<(), String> {
        let sigma = w.ghost.spec_state();
        let live = dec(&self.disk.peek(0));
        let (s1, s2) = if live == 0 { (1, 2) } else { (3, 4) };
        let pair = (dec(&self.disk.peek(s1)), dec(&self.disk.peek(s2)));
        if pair != sigma {
            return Err(format!("AbsR violated: live copy {pair:?}, spec {sigma:?}"));
        }
        Ok(())
    }
}

/// Checker harness for the shadow-copy pattern.
pub struct ShadowHarness {
    /// Which mutant to run.
    pub mutant: ShadowMutant,
    /// Include a concurrent reader thread.
    pub with_reader: bool,
}

impl Default for ShadowHarness {
    fn default() -> Self {
        ShadowHarness {
            mutant: ShadowMutant::None,
            with_reader: true,
        }
    }
}

struct ShadowExec {
    sys: Arc<ShadowPair>,
    with_reader: bool,
}

impl Execution<PairSpec> for ShadowExec {
    fn boot(&mut self, w: &World<PairSpec>) {
        self.sys.boot(w);
    }

    fn threads(&mut self, w: &World<PairSpec>) -> Vec<(String, ThreadBody)> {
        let mut out: Vec<(String, ThreadBody)> = Vec::new();
        let sys = Arc::clone(&self.sys);
        let w2 = w.clone();
        out.push(("putter".into(), Box::new(move || sys.put(&w2, 7, 8))));
        if self.with_reader {
            let sys = Arc::clone(&self.sys);
            let w2 = w.clone();
            out.push((
                "getter".into(),
                Box::new(move || {
                    let (a, b) = sys.get(&w2);
                    // Atomicity: never a torn pair.
                    assert!((a, b) == (0, 0) || (a, b) == (7, 8), "torn pair ({a},{b})");
                }),
            ));
        }
        out
    }

    fn crash_reset(&mut self, _w: &World<PairSpec>) {
        self.sys.crash();
    }

    fn recovery(&mut self, w: &World<PairSpec>) -> ThreadBody {
        let sys = Arc::clone(&self.sys);
        let w2 = w.clone();
        Box::new(move || sys.recover(&w2))
    }

    fn after_recovery(&mut self, w: &World<PairSpec>) -> Vec<(String, ThreadBody)> {
        let sys = Arc::clone(&self.sys);
        let w2 = w.clone();
        vec![(
            "post-crash".into(),
            Box::new(move || {
                // Read first: whatever committed before the crash must be
                // visible now (the get's finish_op checks the value
                // against the spec state).
                let _ = sys.get(&w2);
                sys.put(&w2, 10, 11);
                assert_eq!(sys.get(&w2), (10, 11));
            }),
        )]
    }

    fn final_check(&self, w: &World<PairSpec>) -> Result<(), String> {
        self.sys.abs_check(w)
    }
}

impl Harness<PairSpec> for ShadowHarness {
    fn spec(&self) -> PairSpec {
        PairSpec
    }

    fn make(&self, w: &World<PairSpec>) -> Box<dyn Execution<PairSpec>> {
        let disk = BufferedDisk::new(Arc::clone(&w.rt), ShadowPair::NBLOCKS, 8);
        let sys = ShadowPair::new(w, disk, self.mutant);
        Box::new(ShadowExec {
            sys: Arc::new(sys),
            with_reader: self.with_reader,
        })
    }

    fn name(&self) -> &str {
        "shadow copy"
    }

    fn fault_surface(&self) -> FaultSurface {
        FaultSurface {
            transient_disk_io: true,
            torn_writes: true,
            ..FaultSurface::none()
        }
    }
}
