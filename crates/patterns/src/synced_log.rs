//! A durable append log over the deferred-durability file system — the
//! verified artifact exercising the §6.2 extension ([`goose_rt::fs::BufferedFs`]).
//!
//! With a buffer cache, appends are volatile until `fsync`; the spec
//! therefore has a group-commit shape: a durability watermark advanced
//! by an internal step adjacent to the physical `fsync`, and a crash
//! transition truncating the un-synced suffix. Unlike group commit,
//! the volatile suffix lives in the *kernel* (the FS buffer cache)
//! rather than in user memory — the system under test holds no volatile
//! state of its own beyond its file descriptor.
//!
//! Records are length-prefixed; recovery re-opens the durable file and
//! trusts only whole records (a torn length prefix cannot occur because
//! fsync granularity in the model is whole-file, but the parser defends
//! against short tails anyway, since a real kernel could persist a
//! prefix).

use goose_rt::fs::{BufferedFs, DirH, Fd, FileSys};
use goose_rt::runtime::{GLock, ModelRtExt};
use parking_lot::{Mutex, RwLock};
use perennial::GhostUnwrap;
use perennial_checker::{Execution, Harness, ThreadBody, World};
use perennial_spec::{SpecTS, Transition};
use std::sync::Arc;

/// Abstract state of the synced log.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SlState {
    /// All appended records, in order.
    pub records: Vec<Vec<u8>>,
    /// How many leading records are durable (fsynced).
    pub persisted: usize,
}

/// Operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SlOp {
    /// Append a record (volatile until the next sync).
    Append(Vec<u8>),
    /// Append a record and make everything durable before returning.
    AppendSynced(Vec<u8>),
    /// Read the whole logical log.
    ReadAll,
}

/// Return values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SlRet {
    /// Acknowledgement.
    Done,
    /// `ReadAll` result.
    Records(Vec<Vec<u8>>),
}

/// The synced-log specification.
#[derive(Debug, Clone, Default)]
pub struct SlSpec;

impl SlSpec {
    /// The internal sync transition: everything buffered becomes durable.
    pub fn sync_transition() -> Transition<SlState, ()> {
        Transition::modify(|s: &SlState| {
            let mut s = s.clone();
            s.persisted = s.records.len();
            s
        })
    }
}

impl SpecTS for SlSpec {
    type State = SlState;
    type Op = SlOp;
    type Ret = SlRet;

    fn init(&self) -> SlState {
        SlState::default()
    }

    fn op_transition(&self, op: &SlOp) -> Transition<SlState, SlRet> {
        match op.clone() {
            SlOp::Append(r) => Transition::modify(move |s: &SlState| {
                let mut s = s.clone();
                s.records.push(r.clone());
                s
            })
            .map(|()| SlRet::Done),
            // AppendSynced is Append plus the sync step; since the op is
            // atomic at the spec level, the watermark lands at the end.
            SlOp::AppendSynced(r) => Transition::modify(move |s: &SlState| {
                let mut s = s.clone();
                s.records.push(r.clone());
                s.persisted = s.records.len();
                s
            })
            .map(|()| SlRet::Done),
            SlOp::ReadAll => Transition::gets(|s: &SlState| SlRet::Records(s.records.clone())),
        }
    }

    fn crash_transition(&self) -> Transition<SlState, ()> {
        Transition::modify(|s: &SlState| {
            let mut s = s.clone();
            s.records.truncate(s.persisted);
            s
        })
    }
}

/// Deliberate bugs for mutation tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlMutant {
    /// The correct system.
    None,
    /// `AppendSynced` skips the physical fsync (acknowledged durability
    /// that a machine crash loses).
    SkipFsync,
    /// `AppendSynced` fsyncs the file but never synced the directory
    /// entry at init (the orphan-inode hazard).
    SkipDirSync,
}

/// The instrumented synced log.
pub struct SyncedLog {
    mutant: SlMutant,
    fs: Arc<BufferedFs>,
    dir: DirH,
    lock: RwLock<Option<Arc<dyn GLock>>>,
    /// The append descriptor (volatile: re-created at boot).
    fd: Mutex<Option<Fd>>,
}

const LOG_FILE: &str = "log";

fn encode(rec: &[u8]) -> Vec<u8> {
    let mut out = (rec.len() as u32).to_le_bytes().to_vec();
    out.extend_from_slice(rec);
    out
}

fn decode(data: &[u8]) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i + 4 <= data.len() {
        let len = u32::from_le_bytes(data[i..i + 4].try_into().unwrap()) as usize;
        if i + 4 + len > data.len() {
            break; // torn tail: ignore
        }
        out.push(data[i + 4..i + 4 + len].to_vec());
        i += 4 + len;
    }
    out
}

impl SyncedLog {
    /// Creates the log object; the file itself is created/anchored by
    /// [`SyncedLog::boot`].
    pub fn new(_w: &World<SlSpec>, fs: Arc<BufferedFs>, mutant: SlMutant) -> Self {
        let dir = fs.resolve("d").expect("log dir");
        SyncedLog {
            mutant,
            fs,
            dir,
            lock: RwLock::new(None),
            fd: Mutex::new(None),
        }
    }

    /// Rebuilds volatile state at boot: a fresh lock and append fd.
    ///
    /// The Goose file subset has no `open(O_APPEND)` (§6.2's "a selection
    /// of system calls"), so reopening an existing log recreates the
    /// inode with identical bytes and **re-anchors it durably** —
    /// without the re-anchor, the durable directory entry would keep
    /// pointing at the *old* inode and every later `fsync` would persist
    /// bytes no entry names (the orphan-inode hazard the `SkipDirSync`
    /// mutant demonstrates).
    pub fn boot(&self, w: &World<SlSpec>) {
        *self.lock.write() = Some(w.rt.new_glock());
        let fd = match self.fs.create(self.dir, LOG_FILE).expect("create") {
            Some(fd) => fd, // first boot: fresh file
            None => {
                // Reopen: read, unlink, recreate, replay. At boot the
                // volatile image equals the durable one, so replaying
                // and re-anchoring changes no observable state.
                let data = self
                    .fs
                    .read_file(self.dir, LOG_FILE, 1 << 16)
                    .expect("read existing log");
                self.fs
                    .delete(self.dir, LOG_FILE)
                    .expect("unlink for reopen");
                let fd = self
                    .fs
                    .create(self.dir, LOG_FILE)
                    .expect("recreate")
                    .expect("fresh after unlink");
                if !data.is_empty() {
                    self.fs.append(fd, &data).expect("replay bytes");
                }
                fd
            }
        };
        if self.mutant != SlMutant::SkipDirSync {
            self.fs.fsync(fd).expect("anchor fsync");
            self.fs.dir_sync(self.dir).expect("anchor dir sync");
        }
        *self.fd.lock() = Some(fd);
    }

    fn lock(&self) -> Arc<dyn GLock> {
        Arc::clone(self.lock.read().as_ref().expect("boot() not called"))
    }

    fn fd(&self) -> Fd {
        self.fd.lock().expect("boot() not called")
    }

    /// Appends a record without syncing (fast, volatile).
    pub fn append(&self, w: &World<SlSpec>, rec: &[u8]) {
        let tok = w.ghost.begin_op(SlOp::Append(rec.to_vec())).ghost_unwrap();
        let lock = self.lock();
        lock.acquire();
        // The physical append is the linearization point.
        self.fs.append(self.fd(), &encode(rec)).expect("append");
        let ret = w.ghost.commit_op(&tok).ghost_unwrap();
        lock.release();
        w.ghost.finish_op(tok, &ret).ghost_unwrap();
    }

    /// Appends a record and makes the whole log durable.
    pub fn append_synced(&self, w: &World<SlSpec>, rec: &[u8]) {
        let tok = w
            .ghost
            .begin_op(SlOp::AppendSynced(rec.to_vec()))
            .ghost_unwrap();
        let lock = self.lock();
        lock.acquire();
        self.fs.append(self.fd(), &encode(rec)).expect("append");
        if self.mutant == SlMutant::SkipFsync {
            // Mutant: acknowledge durability without the fsync.
            let ret = w.ghost.commit_op(&tok).ghost_unwrap();
            lock.release();
            w.ghost.finish_op(tok, &ret).ghost_unwrap();
            return;
        }
        // The fsync is the durability (and linearization) point: the
        // commit — which advances the spec watermark — is adjacent.
        self.fs.fsync(self.fd()).expect("fsync");
        let ret = w.ghost.commit_op(&tok).ghost_unwrap();
        lock.release();
        w.ghost.finish_op(tok, &ret).ghost_unwrap();
    }

    /// Explicitly syncs the buffered suffix (the group-commit move).
    pub fn sync(&self, w: &World<SlSpec>) {
        let lock = self.lock();
        lock.acquire();
        self.fs.fsync(self.fd()).expect("fsync");
        w.ghost
            .internal_step(&SlSpec::sync_transition())
            .ghost_unwrap();
        lock.release();
    }

    /// Reads the whole logical log.
    pub fn read_all(&self, w: &World<SlSpec>) -> Vec<Vec<u8>> {
        let tok = w.ghost.begin_op(SlOp::ReadAll).ghost_unwrap();
        let lock = self.lock();
        lock.acquire();
        let data = self.fs.read_file(self.dir, LOG_FILE, 64).expect("read log");
        let recs = decode(&data);
        let ret = w.ghost.commit_op(&tok).ghost_unwrap();
        lock.release();
        w.ghost
            .finish_op(tok, &SlRet::Records(recs.clone()))
            .ghost_unwrap();
        match ret {
            SlRet::Records(_) => recs,
            SlRet::Done => unreachable!("read committed an append transition"),
        }
    }

    /// Recovery: nothing to repair (the durable image *is* the state);
    /// spend the crash token, whose transition truncates σ to the
    /// watermark.
    pub fn recover(&self, w: &World<SlSpec>) {
        w.ghost.recovery_done().ghost_unwrap();
    }

    /// AbsR at quiescence: the volatile file decodes to σ's records and
    /// the durable image decodes to a prefix of at least `persisted`.
    pub fn abs_check(&self, w: &World<SlSpec>) -> Result<(), String> {
        let sigma = w.ghost.spec_state();
        let vol = self
            .fs
            .peek_file("d", LOG_FILE)
            .map(|d| decode(&d))
            .unwrap_or_default();
        if vol != sigma.records {
            return Err(format!(
                "AbsR violated: file has {} records, spec has {}",
                vol.len(),
                sigma.records.len()
            ));
        }
        let dur = self
            .fs
            .peek_durable_file("d", LOG_FILE)
            .map(|d| decode(&d))
            .unwrap_or_default();
        if dur.len() < sigma.persisted {
            return Err(format!(
                "durability violated: {} durable records, watermark {}",
                dur.len(),
                sigma.persisted
            ));
        }
        if !sigma
            .records
            .starts_with(&dur[..dur.len().min(sigma.records.len())])
        {
            return Err("durable image is not a prefix of the logical log".into());
        }
        Ok(())
    }
}

/// Checker harness for the synced log.
pub struct SlHarness {
    /// Which mutant to run.
    pub mutant: SlMutant,
}

impl Default for SlHarness {
    fn default() -> Self {
        SlHarness {
            mutant: SlMutant::None,
        }
    }
}

struct SlExec {
    sys: Arc<SyncedLog>,
}

impl Execution<SlSpec> for SlExec {
    fn boot(&mut self, w: &World<SlSpec>) {
        self.sys.boot(w);
    }

    fn threads(&mut self, w: &World<SlSpec>) -> Vec<(String, ThreadBody)> {
        let mut out: Vec<(String, ThreadBody)> = Vec::new();
        let sys = Arc::clone(&self.sys);
        let w2 = w.clone();
        out.push((
            "writer".into(),
            Box::new(move || {
                sys.append(&w2, b"v1");
                sys.append_synced(&w2, b"d1");
                sys.append(&w2, b"v2");
            }),
        ));
        let sys = Arc::clone(&self.sys);
        let w2 = w.clone();
        out.push((
            "reader".into(),
            Box::new(move || {
                let _ = sys.read_all(&w2);
            }),
        ));
        out
    }

    fn crash_reset(&mut self, _w: &World<SlSpec>) {
        // BufferedFs::crash is invoked by the explorer? No — the harness
        // owns the substrate: revert the volatile image here.
        use goose_rt::fs::FileSys;
        self.sys.fs_handle().crash();
    }

    fn recovery(&mut self, w: &World<SlSpec>) -> ThreadBody {
        let sys = Arc::clone(&self.sys);
        let w2 = w.clone();
        Box::new(move || sys.recover(&w2))
    }

    fn after_recovery(&mut self, w: &World<SlSpec>) -> Vec<(String, ThreadBody)> {
        let sys = Arc::clone(&self.sys);
        let w2 = w.clone();
        vec![(
            "post-crash".into(),
            Box::new(move || {
                // Everything the spec says survived must be readable.
                let _ = sys.read_all(&w2);
                sys.append_synced(&w2, b"post");
                let recs = sys.read_all(&w2);
                assert_eq!(recs.last().map(|r| r.as_slice()), Some(&b"post"[..]));
            }),
        )]
    }

    fn final_check(&self, w: &World<SlSpec>) -> Result<(), String> {
        self.sys.abs_check(w)
    }
}

impl SyncedLog {
    /// The underlying buffered FS (harness access).
    pub fn fs_handle(&self) -> &BufferedFs {
        &self.fs
    }
}

impl Harness<SlSpec> for SlHarness {
    fn spec(&self) -> SlSpec {
        SlSpec
    }

    fn make(&self, w: &World<SlSpec>) -> Box<dyn Execution<SlSpec>> {
        let fs = BufferedFs::new(Arc::clone(&w.rt), &["d"]);
        let sys = SyncedLog::new(w, fs, self.mutant);
        Box::new(SlExec { sys: Arc::new(sys) })
    }

    fn name(&self) -> &str {
        "synced log (deferred durability)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let recs: Vec<Vec<u8>> = vec![b"a".to_vec(), b"longer record".to_vec(), vec![]];
        let mut bytes = Vec::new();
        for r in &recs {
            bytes.extend(encode(r));
        }
        assert_eq!(decode(&bytes), recs);
    }

    #[test]
    fn decode_ignores_torn_tail() {
        let mut bytes = encode(b"whole");
        bytes.extend_from_slice(&100u32.to_le_bytes());
        bytes.extend_from_slice(b"short");
        assert_eq!(decode(&bytes), vec![b"whole".to_vec()]);
    }
}
