//! A generalized write-ahead log: multi-block atomic transactions.
//!
//! The paper's WAL example (§9.1) updates a fixed pair of blocks; this
//! module is the natural extension the paper's design points at — a
//! transaction writes an arbitrary set of (address, value) pairs
//! atomically over a data region, using an on-disk log with a commit
//! record and recovery helping for committed-but-unapplied transactions.
//!
//! Disk layout (block size 8, data region of `DATA_BLOCKS` blocks):
//!
//! ```text
//! block 0:                 log header — number of logged entries
//!                          (0 = log empty, n>0 = committed, n entries)
//! blocks 1..=MAX_TXN*2:    log entries, alternating address / value
//! blocks LOG_END..:        the data region
//! ```
//!
//! `commit_txn` writes the entries, then the header (the durable commit
//! point — a single atomic block write), applies them to the data
//! region, and clears the header; the *logical* update happens at the
//! header clear, with the helping token redeemed by recovery if a crash
//! intervenes (same structure as [`crate::wal`], generalized).

use goose_rt::fault::FaultSurface;
use goose_rt::runtime::{GLock, ModelRtExt};
use parking_lot::RwLock;
use perennial::{DurId, GhostUnwrap, Lease, LockInv};
use perennial_checker::{Execution, Harness, ThreadBody, World};
use perennial_disk::buffered::BufferedDisk;
use perennial_disk::single::SingleDisk;
use perennial_spec::{SpecTS, Transition};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Maximum (address, value) pairs per transaction.
pub const MAX_TXN: u64 = 4;
/// Number of data blocks.
pub const DATA_BLOCKS: u64 = 6;
/// First block of the data region.
pub const LOG_END: u64 = 1 + MAX_TXN * 2;

const TXN_KEY: u64 = 0;

/// Abstract state: the data region as a map.
pub type TxnState = BTreeMap<u64, u64>;

/// Operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnOp {
    /// Atomically apply all writes.
    Commit(Vec<(u64, u64)>),
    /// Read one address.
    Read(u64),
}

/// Return values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnRet {
    /// `Commit` acknowledgement.
    Done,
    /// `Read` result.
    Val(u64),
}

/// The transactional-WAL specification.
#[derive(Debug, Clone, Default)]
pub struct TxnSpec;

impl SpecTS for TxnSpec {
    type State = TxnState;
    type Op = TxnOp;
    type Ret = TxnRet;

    fn init(&self) -> TxnState {
        (0..DATA_BLOCKS).map(|a| (a, 0)).collect()
    }

    fn op_transition(&self, op: &TxnOp) -> Transition<TxnState, TxnRet> {
        match op.clone() {
            TxnOp::Commit(writes) => {
                let probe = writes.clone();
                Transition::gets(move |s: &TxnState| {
                    probe.len() as u64 <= MAX_TXN && probe.iter().all(|(a, _)| s.contains_key(a))
                })
                .and_then(move |ok| {
                    let writes = writes.clone();
                    if ok {
                        Transition::modify(move |s: &TxnState| {
                            let mut s = s.clone();
                            for (a, v) in &writes {
                                s.insert(*a, *v);
                            }
                            s
                        })
                        .map(|()| TxnRet::Done)
                    } else {
                        Transition::undefined()
                    }
                })
            }
            TxnOp::Read(a) => {
                Transition::gets(move |s: &TxnState| s.get(&a).copied()).and_then(|mv| match mv {
                    Some(v) => Transition::ret(TxnRet::Val(v)),
                    None => Transition::undefined(),
                })
            }
        }
    }

    fn crash_transition(&self) -> Transition<TxnState, ()> {
        Transition::skip()
    }
}

/// Deliberate bugs for mutation tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnMutant {
    /// The correct system.
    None,
    /// Apply directly to the data region, skipping the log entirely.
    NoLog,
    /// Write the header before the entries.
    HeaderFirst,
    /// Recovery replays only the first logged entry of a committed
    /// transaction (partial apply).
    PartialRecoveryApply,
}

fn enc(v: u64) -> Vec<u8> {
    v.to_le_bytes().to_vec()
}

fn dec(b: &[u8]) -> u64 {
    u64::from_le_bytes(b[..8].try_into().expect("short block"))
}

/// Ghost bundle protected by the global transaction lock.
pub struct TxnBundle {
    leases: Vec<Lease<Vec<u8>>>,
}

/// The instrumented transactional WAL.
pub struct TxnWal {
    mutant: TxnMutant,
    disk: Arc<BufferedDisk>,
    cells: Vec<DurId<Vec<u8>>>,
    lockinv: Arc<LockInv<TxnBundle>>,
    lock: RwLock<Option<Arc<dyn GLock>>>,
}

impl TxnWal {
    /// Total blocks used.
    pub const NBLOCKS: u64 = LOG_END + DATA_BLOCKS;

    /// Sets up ghost resources over a fresh disk.
    pub fn new(w: &World<TxnSpec>, disk: Arc<BufferedDisk>, mutant: TxnMutant) -> Self {
        let mut cells = Vec::new();
        let mut leases = Vec::new();
        for _ in 0..Self::NBLOCKS {
            let (c, l) = w.ghost.alloc_durable(vec![0u8; 8]);
            cells.push(c);
            leases.push(l);
        }
        TxnWal {
            mutant,
            disk,
            cells,
            lockinv: Arc::new(LockInv::new(TxnBundle { leases })),
            lock: RwLock::new(None),
        }
    }

    /// Rebuilds the in-memory lock at boot.
    pub fn boot(&self, w: &World<TxnSpec>) {
        *self.lock.write() = Some(w.rt.new_glock());
    }

    fn lock(&self) -> Arc<dyn GLock> {
        Arc::clone(self.lock.read().as_ref().expect("boot() not called"))
    }

    fn wblk(&self, w: &World<TxnSpec>, bundle: &mut TxnBundle, block: u64, v: u64) {
        self.disk.write(block, &enc(v));
        w.ghost
            .write_durable(
                self.cells[block as usize],
                &mut bundle.leases[block as usize],
                enc(v),
            )
            .ghost_unwrap();
    }

    /// Durable header transition (write-through; see [`crate::wal`]).
    fn set_header(&self, w: &World<TxnSpec>, bundle: &mut TxnBundle, v: u64) {
        self.disk.write_through(0, &enc(v));
        w.ghost
            .write_durable(self.cells[0], &mut bundle.leases[0], enc(v))
            .ghost_unwrap();
    }

    /// Atomically applies `writes` to the data region.
    pub fn commit_txn(&self, w: &World<TxnSpec>, writes: &[(u64, u64)]) {
        assert!(writes.len() as u64 <= MAX_TXN, "transaction too large");
        let tok = w
            .ghost
            .begin_op(TxnOp::Commit(writes.to_vec()))
            .ghost_unwrap();
        let lock = self.lock();
        lock.acquire();
        let mut bundle = self.lockinv.take().ghost_unwrap();
        w.ghost.stash_op(&tok, TXN_KEY).ghost_unwrap();

        if self.mutant == TxnMutant::NoLog {
            for (a, v) in writes {
                self.wblk(w, &mut bundle, LOG_END + a, *v);
            }
            self.disk.flush();
        } else {
            if self.mutant == TxnMutant::HeaderFirst {
                self.set_header(w, &mut bundle, writes.len() as u64);
            }
            // Log the entries (address, value alternating).
            for (i, (a, v)) in writes.iter().enumerate() {
                self.wblk(w, &mut bundle, 1 + 2 * i as u64, *a);
                self.wblk(w, &mut bundle, 2 + 2 * i as u64, *v);
            }
            if self.mutant != TxnMutant::HeaderFirst {
                // Flush the log durable, then the durable commit point:
                // the write-through header names the entry count.
                self.disk.flush();
                self.set_header(w, &mut bundle, writes.len() as u64);
            }
            // Apply to the data region and flush it durable before the
            // header is cleared.
            for (a, v) in writes {
                self.wblk(w, &mut bundle, LOG_END + a, *v);
            }
            self.disk.flush();
        }

        // Clear the header; the logical update takes effect here.
        self.set_header(w, &mut bundle, 0);
        w.ghost.unstash_op(&tok, TXN_KEY).ghost_unwrap();
        let ret = w.ghost.commit_op(&tok).ghost_unwrap();

        self.lockinv.put(bundle).ghost_unwrap();
        lock.release();
        w.ghost.finish_op(tok, &ret).ghost_unwrap();
    }

    /// Reads one address from the data region.
    pub fn read(&self, w: &World<TxnSpec>, a: u64) -> u64 {
        let tok = w.ghost.begin_op(TxnOp::Read(a)).ghost_unwrap();
        let lock = self.lock();
        lock.acquire();
        let bundle = self.lockinv.take().ghost_unwrap();
        let v = dec(&self.disk.read(LOG_END + a));
        let ret = w.ghost.commit_op(&tok).ghost_unwrap();
        self.lockinv.put(bundle).ghost_unwrap();
        lock.release();
        w.ghost.finish_op(tok, &TxnRet::Val(v)).ghost_unwrap();
        match ret {
            TxnRet::Val(x) => x,
            TxnRet::Done => unreachable!("read committed a txn transition"),
        }
    }

    /// Recovery: replay a committed transaction from the log (helping),
    /// or discard an incomplete one.
    pub fn recover(&self, w: &World<TxnSpec>) {
        let mut leases = Vec::new();
        for c in &self.cells {
            leases.push(w.ghost.recover_lease(*c).ghost_unwrap());
        }
        let mut bundle = TxnBundle { leases };

        let n = dec(&self.disk.read(0));
        if n > 0 && n <= MAX_TXN {
            // Committed but (possibly) unapplied: replay the log.
            let limit = if self.mutant == TxnMutant::PartialRecoveryApply {
                1
            } else {
                n
            };
            for i in 0..limit {
                let a = dec(&self.disk.read(1 + 2 * i));
                let v = dec(&self.disk.read(2 + 2 * i));
                self.wblk(w, &mut bundle, LOG_END + a, v);
            }
            self.disk.flush();
            // Clear the header and redeem the crashed thread's token.
            self.set_header(w, &mut bundle, 0);
            let (_jid, ret) = w.ghost.help_commit(TXN_KEY).ghost_unwrap();
            debug_assert_eq!(ret, TxnRet::Done);
        } else if w.ghost.has_help(TXN_KEY) {
            // Incomplete: the transaction never committed.
            w.ghost.drop_help(TXN_KEY).ghost_unwrap();
        }

        self.lockinv.reset(bundle);
        w.ghost.recovery_done().ghost_unwrap();
    }

    /// Crash transition for the disk: drop (or tear) the volatile write
    /// buffer per the execution's fault plan.
    pub fn crash(&self) {
        self.disk.crash_torn();
    }

    /// AbsR at quiescence: data region equals σ and the log is clear.
    pub fn abs_check(&self, w: &World<TxnSpec>) -> Result<(), String> {
        let sigma = w.ghost.spec_state();
        for a in 0..DATA_BLOCKS {
            let disk_v = dec(&self.disk.peek(LOG_END + a));
            let spec_v = *sigma.get(&a).expect("address in spec");
            if disk_v != spec_v {
                return Err(format!(
                    "AbsR violated at data[{a}]: disk {disk_v}, spec {spec_v}"
                ));
            }
        }
        if dec(&self.disk.peek(0)) != 0 {
            return Err("AbsR violated: log header left committed".into());
        }
        Ok(())
    }
}

/// Checker harness for the transactional WAL.
pub struct TxnHarness {
    /// Which mutant to run.
    pub mutant: TxnMutant,
    /// Include a concurrent reader thread.
    pub with_reader: bool,
}

impl Default for TxnHarness {
    fn default() -> Self {
        TxnHarness {
            mutant: TxnMutant::None,
            with_reader: true,
        }
    }
}

struct TxnExec {
    sys: Arc<TxnWal>,
    with_reader: bool,
}

impl Execution<TxnSpec> for TxnExec {
    fn boot(&mut self, w: &World<TxnSpec>) {
        self.sys.boot(w);
    }

    fn threads(&mut self, w: &World<TxnSpec>) -> Vec<(String, ThreadBody)> {
        let mut out: Vec<(String, ThreadBody)> = Vec::new();
        let sys = Arc::clone(&self.sys);
        let w2 = w.clone();
        out.push((
            "txn-writer".into(),
            Box::new(move || sys.commit_txn(&w2, &[(0, 10), (2, 20), (4, 40)])),
        ));
        if self.with_reader {
            let sys = Arc::clone(&self.sys);
            let w2 = w.clone();
            out.push((
                "reader".into(),
                Box::new(move || {
                    // Two separate reads: the txn may commit in between
                    // (0 then 20 is legal), but the reverse order would
                    // mean the committed transaction was torn back out.
                    let v0 = sys.read(&w2, 0);
                    let v2 = sys.read(&w2, 2);
                    assert!(v0 == 0 || v0 == 10, "impossible data[0] = {v0}");
                    assert!(v2 == 0 || v2 == 20, "impossible data[2] = {v2}");
                    assert!(
                        !(v0 == 10 && v2 == 0),
                        "transaction unwound between reads: ({v0},{v2})"
                    );
                }),
            ));
        }
        out
    }

    fn crash_reset(&mut self, _w: &World<TxnSpec>) {
        self.sys.crash();
    }

    fn recovery(&mut self, w: &World<TxnSpec>) -> ThreadBody {
        let sys = Arc::clone(&self.sys);
        let w2 = w.clone();
        Box::new(move || sys.recover(&w2))
    }

    fn after_recovery(&mut self, w: &World<TxnSpec>) -> Vec<(String, ThreadBody)> {
        let sys = Arc::clone(&self.sys);
        let w2 = w.clone();
        vec![(
            "post-crash".into(),
            Box::new(move || {
                // Read first (validates committed state survived), then
                // run another transaction.
                let _ = sys.read(&w2, 0);
                let _ = sys.read(&w2, 4);
                sys.commit_txn(&w2, &[(1, 11), (5, 55)]);
                assert_eq!(sys.read(&w2, 1), 11);
                assert_eq!(sys.read(&w2, 5), 55);
            }),
        )]
    }

    fn final_check(&self, w: &World<TxnSpec>) -> Result<(), String> {
        self.sys.abs_check(w)
    }
}

impl Harness<TxnSpec> for TxnHarness {
    fn spec(&self) -> TxnSpec {
        TxnSpec
    }

    fn make(&self, w: &World<TxnSpec>) -> Box<dyn Execution<TxnSpec>> {
        let disk = BufferedDisk::new(Arc::clone(&w.rt), TxnWal::NBLOCKS, 8);
        let sys = TxnWal::new(w, disk, self.mutant);
        Box::new(TxnExec {
            sys: Arc::new(sys),
            with_reader: self.with_reader,
        })
    }

    fn name(&self) -> &str {
        "transactional WAL"
    }

    fn fault_surface(&self) -> FaultSurface {
        FaultSurface {
            transient_disk_io: true,
            torn_writes: true,
            ..FaultSurface::none()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perennial_spec::system::{ReplayError, SeqReplay};

    #[test]
    fn spec_applies_all_writes_atomically() {
        let mut r = SeqReplay::new(TxnSpec);
        r.step_op(&TxnOp::Commit(vec![(0, 1), (3, 9)])).unwrap();
        assert_eq!(r.step_op(&TxnOp::Read(0)).unwrap(), TxnRet::Val(1));
        assert_eq!(r.step_op(&TxnOp::Read(3)).unwrap(), TxnRet::Val(9));
        assert_eq!(r.step_op(&TxnOp::Read(1)).unwrap(), TxnRet::Val(0));
    }

    #[test]
    fn spec_rejects_oversized_or_oob_txn() {
        let mut r = SeqReplay::new(TxnSpec);
        let too_big: Vec<(u64, u64)> = (0..MAX_TXN + 1).map(|i| (i % DATA_BLOCKS, i)).collect();
        assert_eq!(
            r.step_op(&TxnOp::Commit(too_big)),
            Err(ReplayError::Undefined)
        );
        assert_eq!(
            r.step_op(&TxnOp::Commit(vec![(DATA_BLOCKS + 1, 0)])),
            Err(ReplayError::Undefined)
        );
    }
}
