//! The write-ahead-log pattern (§9.1): atomic update of a pair of disk
//! blocks via a log, with **recovery helping** for a committed but
//! unapplied transaction — the paper: "The proof uses recovery helping to
//! justify completing a committed but unapplied transaction."
//!
//! Disk layout (block size 8):
//!
//! ```text
//! block 0: log header — 0 = empty, 1 = committed
//! blocks 1,2: logged pair
//! blocks 3,4: main pair (what readers see)
//! ```
//!
//! `put` logs both values, sets the header (making the transaction
//! durable), applies the log to the main region, and clears the header.
//! The *logical* update happens when the main region is complete: the
//! thread commits its spec step adjacently with the header-clear write.
//! If it crashes after setting the header but before clearing it,
//! recovery finds the committed transaction, finishes applying it, and
//! redeems the helping token stashed in the crash invariant to justify
//! the spec step on the crashed thread's behalf.
//!
//! The disk is a [`BufferedDisk`]: data writes land in a volatile buffer
//! and must be made durable by an explicit [`BufferedDisk::flush`]
//! *before* the header transition that depends on them; the header
//! itself goes through [`BufferedDisk::write_through`] so each commit
//! record stays a single atomic durable write. The checker's torn-write
//! sweep crashes with the buffer only partially persisted, so a missing
//! flush (see [`WalMutant::SkipCommitFlush`]) is a findable bug, not a
//! silent assumption.

use crate::pair_spec::{dec, enc, PairOp, PairRet, PairSpec};
use goose_rt::fault::FaultSurface;
use goose_rt::runtime::{GLock, ModelRtExt};
use parking_lot::RwLock;
use perennial::{DurId, GhostUnwrap, Lease, LockInv};
use perennial_checker::{Execution, Harness, ThreadBody, World};
use perennial_disk::buffered::BufferedDisk;
use perennial_disk::single::SingleDisk;
use std::sync::Arc;

/// Helping key for the single in-flight transaction (the global lock
/// admits one at a time).
const TXN_KEY: u64 = 0;

/// Deliberate bugs for mutation tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalMutant {
    /// The correct system.
    None,
    /// Recovery ignores a committed-but-unapplied transaction (drops it).
    SkipRecoveryApply,
    /// Set the header before writing the log entries (a crash in between
    /// makes recovery apply garbage).
    HeaderFirst,
    /// Never stash the helping token.
    SkipHelping,
    /// Skip the flush that makes the log entries durable before the
    /// commit header is set. Invisible to the plain crash sweep (an
    /// un-torn crash persists the buffer anyway) — only the torn-write
    /// sweep catches it, by crashing with the header durable but the log
    /// torn away.
    SkipCommitFlush,
}

/// Ghost bundle protected by the global lock.
pub struct WalBundle {
    leases: Vec<Lease<Vec<u8>>>,
}

/// The instrumented write-ahead-log pair store.
pub struct WalPair {
    mutant: WalMutant,
    disk: Arc<BufferedDisk>,
    cells: Vec<DurId<Vec<u8>>>,
    lockinv: Arc<LockInv<WalBundle>>,
    lock: RwLock<Option<Arc<dyn GLock>>>,
}

impl WalPair {
    /// Blocks used by the pattern.
    pub const NBLOCKS: u64 = 5;

    /// Sets up ghost resources over a fresh 5-block disk.
    pub fn new(w: &World<PairSpec>, disk: Arc<BufferedDisk>, mutant: WalMutant) -> Self {
        let mut cells = Vec::new();
        let mut leases = Vec::new();
        for _ in 0..Self::NBLOCKS {
            let (c, l) = w.ghost.alloc_durable(vec![0u8; 8]);
            cells.push(c);
            leases.push(l);
        }
        WalPair {
            mutant,
            disk,
            cells,
            lockinv: Arc::new(LockInv::new(WalBundle { leases })),
            lock: RwLock::new(None),
        }
    }

    /// Rebuilds the in-memory lock at boot.
    pub fn boot(&self, w: &World<PairSpec>) {
        *self.lock.write() = Some(w.rt.new_glock());
    }

    fn lock(&self) -> Arc<dyn GLock> {
        Arc::clone(self.lock.read().as_ref().expect("boot() not called"))
    }

    /// Buffered data write + ghost update. The ghost master is updated at
    /// write time even though the physical write is still volatile; this
    /// is sound here because nothing compares the ghost master against
    /// the platter, and recovery rewrites every cell it touches (see
    /// DESIGN.md §10 on this deliberate modelling shortcut).
    fn wblk(&self, w: &World<PairSpec>, bundle: &mut WalBundle, block: u64, v: u64) {
        self.disk.write(block, &enc(v));
        w.ghost
            .write_durable(
                self.cells[block as usize],
                &mut bundle.leases[block as usize],
                enc(v),
            )
            .ghost_unwrap();
    }

    /// Durable header transition: a single write-through block write (the
    /// commit record must not have a torn window).
    fn set_header(&self, w: &World<PairSpec>, bundle: &mut WalBundle, v: u64) {
        self.disk.write_through(0, &enc(v));
        w.ghost
            .write_durable(self.cells[0], &mut bundle.leases[0], enc(v))
            .ghost_unwrap();
    }

    /// Atomically replaces the pair via the log.
    pub fn put(&self, w: &World<PairSpec>, a: u64, b: u64) {
        let tok = w.ghost.begin_op(PairOp::Put(a, b)).ghost_unwrap();
        let lock = self.lock();
        lock.acquire();
        let mut bundle = self.lockinv.take().ghost_unwrap();

        // Stash j ⇛ Put(a, b): from the header write until the apply
        // completes, recovery may finish this transaction on our behalf.
        if self.mutant != WalMutant::SkipHelping {
            w.ghost.stash_op(&tok, TXN_KEY).ghost_unwrap();
        }

        if self.mutant == WalMutant::HeaderFirst {
            self.set_header(w, &mut bundle, 1);
            self.wblk(w, &mut bundle, 1, a);
            self.wblk(w, &mut bundle, 2, b);
            self.disk.flush();
        } else {
            // Log both values, flush so the log is durable, then commit
            // the transaction with the write-through header set.
            self.wblk(w, &mut bundle, 1, a);
            self.wblk(w, &mut bundle, 2, b);
            if self.mutant != WalMutant::SkipCommitFlush {
                self.disk.flush();
            }
            self.set_header(w, &mut bundle, 1);
        }

        // Apply the log to the main region and make it durable before
        // the header is cleared (recovery must never see an empty header
        // over a torn main region).
        self.wblk(w, &mut bundle, 3, a);
        self.wblk(w, &mut bundle, 4, b);
        self.disk.flush();

        // Clear the header: the apply is complete and the logical update
        // takes effect — retrieve the helping token and commit adjacently
        // with this atomic block write.
        self.set_header(w, &mut bundle, 0);
        if self.mutant != WalMutant::SkipHelping {
            w.ghost.unstash_op(&tok, TXN_KEY).ghost_unwrap();
        }
        let ret = w.ghost.commit_op(&tok).ghost_unwrap();

        self.lockinv.put(bundle).ghost_unwrap();
        lock.release();
        w.ghost.finish_op(tok, &ret).ghost_unwrap();
    }

    /// Reads the pair from the main region.
    pub fn get(&self, w: &World<PairSpec>) -> (u64, u64) {
        let tok = w.ghost.begin_op(PairOp::Get).ghost_unwrap();
        let lock = self.lock();
        lock.acquire();
        let bundle = self.lockinv.take().ghost_unwrap();
        let a = dec(&self.disk.read(3));
        let b = dec(&self.disk.read(4));
        let ret = w.ghost.commit_op(&tok).ghost_unwrap();
        self.lockinv.put(bundle).ghost_unwrap();
        lock.release();
        w.ghost.finish_op(tok, &PairRet::Val(a, b)).ghost_unwrap();
        match ret {
            PairRet::Val(x, y) => (x, y),
            PairRet::Unit => unreachable!("get committed a put transition"),
        }
    }

    /// Recovery (§9.1): delete incomplete transactions (header empty —
    /// nothing to do, the log is garbage) and finish applying committed
    /// ones, justifying the completion by redeeming the helping token.
    pub fn recover(&self, w: &World<PairSpec>) {
        let mut leases = Vec::new();
        for c in &self.cells {
            leases.push(w.ghost.recover_lease(*c).ghost_unwrap());
        }
        let mut bundle = WalBundle { leases };

        let header = dec(&self.disk.read(0));
        if header == 1 && self.mutant != WalMutant::SkipRecoveryApply {
            // Committed but unapplied: finish the apply, flush it durable,
            // then clear the header write-through.
            let a = dec(&self.disk.read(1));
            let b = dec(&self.disk.read(2));
            self.wblk(w, &mut bundle, 3, a);
            self.wblk(w, &mut bundle, 4, b);
            self.disk.flush();
            // Clear the header; the crashed thread's operation takes
            // logical effect here — redeem its token (§5.4).
            self.set_header(w, &mut bundle, 0);
            let (_jid, ret) = w.ghost.help_commit(TXN_KEY).ghost_unwrap();
            debug_assert_eq!(ret, PairRet::Unit);
        } else if w.ghost.has_help(TXN_KEY) {
            // Incomplete (header empty): the transaction never committed;
            // the crashed operation never happened.
            w.ghost.drop_help(TXN_KEY).ghost_unwrap();
        }

        self.lockinv.reset(bundle);
        w.ghost.recovery_done().ghost_unwrap();
    }

    /// Crash transition for the disk: drop (or tear) the volatile write
    /// buffer per the execution's fault plan.
    pub fn crash(&self) {
        self.disk.crash_torn();
    }

    /// AbsR at quiescence: the main region equals σ and no transaction is
    /// left committed-but-unapplied.
    pub fn abs_check(&self, w: &World<PairSpec>) -> Result<(), String> {
        let sigma = w.ghost.spec_state();
        let pair = (dec(&self.disk.peek(3)), dec(&self.disk.peek(4)));
        if pair != sigma {
            return Err(format!(
                "AbsR violated: main region {pair:?}, spec {sigma:?}"
            ));
        }
        if dec(&self.disk.peek(0)) != 0 {
            return Err("AbsR violated: header left committed at quiescence".into());
        }
        Ok(())
    }
}

/// Checker harness for the write-ahead-log pattern.
pub struct WalHarness {
    /// Which mutant to run.
    pub mutant: WalMutant,
    /// Include a concurrent reader thread.
    pub with_reader: bool,
}

impl Default for WalHarness {
    fn default() -> Self {
        WalHarness {
            mutant: WalMutant::None,
            with_reader: true,
        }
    }
}

struct WalExec {
    sys: Arc<WalPair>,
    with_reader: bool,
}

impl Execution<PairSpec> for WalExec {
    fn boot(&mut self, w: &World<PairSpec>) {
        self.sys.boot(w);
    }

    fn threads(&mut self, w: &World<PairSpec>) -> Vec<(String, ThreadBody)> {
        let mut out: Vec<(String, ThreadBody)> = Vec::new();
        let sys = Arc::clone(&self.sys);
        let w2 = w.clone();
        out.push(("putter".into(), Box::new(move || sys.put(&w2, 5, 6))));
        if self.with_reader {
            let sys = Arc::clone(&self.sys);
            let w2 = w.clone();
            out.push((
                "getter".into(),
                Box::new(move || {
                    let (a, b) = sys.get(&w2);
                    assert!((a, b) == (0, 0) || (a, b) == (5, 6), "torn pair ({a},{b})");
                }),
            ));
        }
        out
    }

    fn crash_reset(&mut self, _w: &World<PairSpec>) {
        self.sys.crash();
    }

    fn recovery(&mut self, w: &World<PairSpec>) -> ThreadBody {
        let sys = Arc::clone(&self.sys);
        let w2 = w.clone();
        Box::new(move || sys.recover(&w2))
    }

    fn after_recovery(&mut self, w: &World<PairSpec>) -> Vec<(String, ThreadBody)> {
        let sys = Arc::clone(&self.sys);
        let w2 = w.clone();
        vec![(
            "post-crash".into(),
            Box::new(move || {
                // Read first: a committed-but-unapplied transaction must
                // have been completed by recovery and be visible here.
                let _ = sys.get(&w2);
                sys.put(&w2, 20, 21);
                assert_eq!(sys.get(&w2), (20, 21));
            }),
        )]
    }

    fn final_check(&self, w: &World<PairSpec>) -> Result<(), String> {
        self.sys.abs_check(w)
    }
}

impl Harness<PairSpec> for WalHarness {
    fn spec(&self) -> PairSpec {
        PairSpec
    }

    fn make(&self, w: &World<PairSpec>) -> Box<dyn Execution<PairSpec>> {
        let disk = BufferedDisk::new(Arc::clone(&w.rt), WalPair::NBLOCKS, 8);
        let sys = WalPair::new(w, disk, self.mutant);
        Box::new(WalExec {
            sys: Arc::new(sys),
            with_reader: self.with_reader,
        })
    }

    fn name(&self) -> &str {
        "write-ahead log"
    }

    fn fault_surface(&self) -> FaultSurface {
        FaultSurface {
            transient_disk_io: true,
            torn_writes: true,
            ..FaultSurface::none()
        }
    }
}
