//! Model-checking the three crash-safety patterns (Table 3 of the
//! paper), with mutation tests for each.

use crash_patterns::group_commit::{GcHarness, GcMutant};
use crash_patterns::shadow::{ShadowHarness, ShadowMutant};
use crash_patterns::wal::{WalHarness, WalMutant};
use perennial_checker::{check, CheckConfig, ExecOutcome, Pass};

fn cfg() -> CheckConfig {
    CheckConfig::builder()
        .dfs_max_executions(300)
        .random_samples(10)
        .random_crash_samples(20)
        .without_passes([Pass::NestedCrash])
        .build()
}

fn cfg_nested() -> CheckConfig {
    CheckConfig::builder()
        .dfs_max_executions(0)
        .random_samples(0)
        .random_crash_samples(0)
        .build()
}

// ---------------------------------------------------------------------
// Shadow copy.
// ---------------------------------------------------------------------

#[test]
fn shadow_copy_passes() {
    let report = check(&ShadowHarness::default(), &cfg());
    assert!(
        report.passed(),
        "counterexample: {:?}",
        report.counterexample
    );
    assert!(report.crashes_injected > 10);
}

#[test]
fn shadow_copy_crash_during_recovery() {
    let h = ShadowHarness {
        with_reader: false,
        ..ShadowHarness::default()
    };
    let report = check(&h, &cfg_nested());
    assert!(
        report.passed(),
        "counterexample: {:?}",
        report.counterexample
    );
}

#[test]
fn shadow_mutant_flip_first_caught() {
    let h = ShadowHarness {
        mutant: ShadowMutant::FlipFirst,
        with_reader: false,
    };
    let report = check(&h, &cfg());
    let cx = report.counterexample.expect("flip-first must be caught");
    assert!(!cx.crash_points.is_empty(), "only reachable via a crash");
}

#[test]
fn shadow_mutant_in_place_caught() {
    let h = ShadowHarness {
        mutant: ShadowMutant::InPlace,
        with_reader: false,
    };
    let report = check(&h, &cfg());
    let cx = report.counterexample.expect("in-place must be caught");
    assert!(!cx.crash_points.is_empty(), "only reachable via a crash");
}

// ---------------------------------------------------------------------
// Write-ahead log.
// ---------------------------------------------------------------------

#[test]
fn wal_passes_and_uses_helping() {
    let report = check(&WalHarness::default(), &cfg());
    assert!(
        report.passed(),
        "counterexample: {:?}",
        report.counterexample
    );
    // The crash sweep must land between the header write and the apply,
    // forcing recovery to complete a committed-but-unapplied transaction.
    assert!(
        report.helped_ops >= 1,
        "no crash point exercised WAL recovery helping"
    );
}

#[test]
fn wal_crash_during_recovery() {
    let h = WalHarness {
        with_reader: false,
        ..WalHarness::default()
    };
    let report = check(&h, &cfg_nested());
    assert!(
        report.passed(),
        "counterexample: {:?}",
        report.counterexample
    );
}

#[test]
fn wal_mutant_skip_recovery_apply_caught() {
    let h = WalHarness {
        mutant: WalMutant::SkipRecoveryApply,
        with_reader: false,
    };
    let report = check(&h, &cfg());
    let cx = report.counterexample.expect("skip-apply must be caught");
    assert!(!cx.crash_points.is_empty(), "only reachable via a crash");
}

#[test]
fn wal_mutant_header_first_caught() {
    let h = WalHarness {
        mutant: WalMutant::HeaderFirst,
        with_reader: false,
    };
    let report = check(&h, &cfg());
    let cx = report.counterexample.expect("header-first must be caught");
    assert!(!cx.crash_points.is_empty(), "only reachable via a crash");
}

#[test]
fn wal_mutant_skip_helping_caught() {
    let h = WalHarness {
        mutant: WalMutant::SkipHelping,
        with_reader: false,
    };
    let report = check(&h, &cfg());
    let cx = report.counterexample.expect("skip-helping must be caught");
    assert!(
        matches!(cx.outcome, ExecOutcome::Violation(_)),
        "expected a ghost violation, got {:?}",
        cx.outcome
    );
}

// ---------------------------------------------------------------------
// Group commit.
// ---------------------------------------------------------------------

#[test]
fn group_commit_passes() {
    let report = check(&GcHarness::default(), &cfg());
    assert!(
        report.passed(),
        "counterexample: {:?}",
        report.counterexample
    );
    assert!(report.crashes_injected > 10);
}

#[test]
fn group_commit_mutant_count_first_caught() {
    let h = GcHarness {
        mutant: GcMutant::CountFirst,
    };
    let report = check(&h, &cfg());
    let cx = report.counterexample.expect("count-first must be caught");
    assert!(!cx.crash_points.is_empty(), "only reachable via a crash");
}

#[test]
fn group_commit_mutant_fake_durability_caught() {
    let h = GcHarness {
        mutant: GcMutant::FakeDurability,
    };
    let report = check(&h, &cfg());
    let cx = report
        .counterexample
        .expect("fake durability must be caught");
    assert!(
        matches!(
            cx.outcome,
            ExecOutcome::FinalCheckFailed(_) | ExecOutcome::Violation(_)
        ),
        "unexpected outcome {:?}",
        cx.outcome
    );
}

// ---------------------------------------------------------------------
// Transactional WAL (multi-block extension of the pattern).
// ---------------------------------------------------------------------

use crash_patterns::txn_wal::{TxnHarness, TxnMutant};

#[test]
fn txn_wal_passes_and_uses_helping() {
    let report = check(&TxnHarness::default(), &cfg());
    assert!(
        report.passed(),
        "counterexample: {:?}",
        report.counterexample
    );
    assert!(
        report.helped_ops >= 1,
        "no crash point exercised txn-WAL recovery helping"
    );
}

#[test]
fn txn_wal_crash_during_recovery() {
    let h = TxnHarness {
        with_reader: false,
        ..TxnHarness::default()
    };
    let report = check(&h, &cfg_nested());
    assert!(
        report.passed(),
        "counterexample: {:?}",
        report.counterexample
    );
}

#[test]
fn txn_wal_mutant_no_log_caught() {
    let h = TxnHarness {
        mutant: TxnMutant::NoLog,
        with_reader: false,
    };
    let report = check(&h, &cfg());
    let cx = report.counterexample.expect("no-log must be caught");
    assert!(!cx.crash_points.is_empty(), "only reachable via a crash");
}

#[test]
fn txn_wal_mutant_header_first_caught() {
    let h = TxnHarness {
        mutant: TxnMutant::HeaderFirst,
        with_reader: false,
    };
    let report = check(&h, &cfg());
    report.counterexample.expect("header-first must be caught");
}

#[test]
fn txn_wal_mutant_partial_recovery_caught() {
    let h = TxnHarness {
        mutant: TxnMutant::PartialRecoveryApply,
        with_reader: false,
    };
    let report = check(&h, &cfg());
    let cx = report
        .counterexample
        .expect("partial recovery apply must be caught");
    assert!(!cx.crash_points.is_empty(), "only reachable via a crash");
}

// ---------------------------------------------------------------------
// Synced log over the deferred-durability FS (§6.2 future work, built).
// ---------------------------------------------------------------------

use crash_patterns::synced_log::{SlHarness, SlMutant};

#[test]
fn synced_log_passes() {
    let report = check(&SlHarness::default(), &cfg());
    assert!(
        report.passed(),
        "counterexample: {:?}",
        report.counterexample
    );
    assert!(report.crashes_injected > 10);
}

#[test]
fn synced_log_crash_during_recovery() {
    let report = check(&SlHarness::default(), &cfg_nested());
    assert!(
        report.passed(),
        "counterexample: {:?}",
        report.counterexample
    );
}

#[test]
fn synced_log_mutant_skip_fsync_caught() {
    let h = SlHarness {
        mutant: SlMutant::SkipFsync,
    };
    let report = check(&h, &cfg());
    let cx = report.counterexample.expect("skip-fsync must be caught");
    assert!(
        matches!(
            cx.outcome,
            ExecOutcome::FinalCheckFailed(_) | ExecOutcome::Violation(_)
        ),
        "unexpected outcome {:?}",
        cx.outcome
    );
}

#[test]
fn synced_log_mutant_skip_dir_sync_caught() {
    let h = SlHarness {
        mutant: SlMutant::SkipDirSync,
    };
    let report = check(&h, &cfg());
    // Caught either by the durable-image abstraction check (crash-free:
    // the watermark claims durability the durable image lacks) or by a
    // post-crash read of the vanished record.
    let cx = report.counterexample.expect("skip-dir-sync must be caught");
    assert!(
        matches!(
            cx.outcome,
            ExecOutcome::FinalCheckFailed(_) | ExecOutcome::Violation(_) | ExecOutcome::Bug(_)
        ),
        "unexpected outcome {:?}",
        cx.outcome
    );
}

// ---------------------------------------------------------------------
// Fault-injection sweeps (torn writes at the buffered-disk layer).
// ---------------------------------------------------------------------

fn cfg_faults() -> CheckConfig {
    CheckConfig::builder()
        .dfs_max_executions(0)
        .random_samples(0)
        .random_crash_samples(0)
        .without_passes([Pass::NestedCrash])
        .with_passes([Pass::DiskFault, Pass::TornWrite, Pass::NetFault])
        .build()
}

#[test]
fn wal_mutant_skip_commit_flush_invisible_to_plain_crash_sweep() {
    // Without torn writes every crash keeps the whole write buffer
    // (KeepAll), so skipping the flush barrier before the commit header
    // is unobservable — exactly why the torn-write sweep exists.
    let h = WalHarness {
        mutant: WalMutant::SkipCommitFlush,
        with_reader: false,
    };
    let report = check(&h, &cfg());
    assert!(
        report.passed(),
        "plain crash sweep should NOT catch skip-commit-flush: {:?}",
        report.counterexample
    );
}

#[test]
fn wal_mutant_skip_commit_flush_caught_by_torn_write_sweep() {
    let h = WalHarness {
        mutant: WalMutant::SkipCommitFlush,
        with_reader: false,
    };
    let report = check(&h, &cfg_faults());
    let cx = report
        .counterexample
        .expect("torn-write sweep must catch skip-commit-flush");
    assert_eq!(cx.pass, "torn-write-sweep");
    assert!(!cx.faults.is_empty(), "counterexample records the plan");
    assert!(!cx.crash_points.is_empty(), "only reachable via a crash");
}

#[test]
fn patterns_pass_under_fault_sweeps() {
    let cfg = cfg_faults();
    let wal = check(
        &WalHarness {
            with_reader: false,
            ..WalHarness::default()
        },
        &cfg,
    );
    assert!(wal.passed(), "wal: {:?}", wal.counterexample);
    let shadow = check(
        &ShadowHarness {
            with_reader: false,
            ..ShadowHarness::default()
        },
        &cfg,
    );
    assert!(shadow.passed(), "shadow: {:?}", shadow.counterexample);
    let gc = check(&GcHarness::default(), &cfg);
    assert!(gc.passed(), "group commit: {:?}", gc.counterexample);
    let txn = check(
        &crash_patterns::txn_wal::TxnHarness {
            with_reader: false,
            ..crash_patterns::txn_wal::TxnHarness::default()
        },
        &cfg,
    );
    assert!(txn.passed(), "txn wal: {:?}", txn.counterexample);
}
