//! Checker harnesses for the replicated disk: concurrent workloads,
//! optional disk-failure injection, and mutants.

use crate::proof::{RdMutant, VerifiedReplDisk};
use crate::spec::{RdSpec, RdState};
use goose_rt::fault::FaultSurface;
use perennial_checker::{Execution, Harness, ScenarioSet, ThreadBody, World};
use perennial_disk::two::{DiskId, ModelTwoDisks, TwoDisks};
use std::sync::Arc;

/// Scenario shape: which workload threads to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RdWorkload {
    /// One writer, one reader on the same address plus a writer on
    /// another address (small enough for exhaustive DFS).
    Mixed,
    /// A single writer (the Figure 6 scenario: sweep a crash through one
    /// `rd_write`).
    SingleWrite,
    /// Two writers racing on the same address.
    WriteWrite,
    /// Writer then a thread that fails disk 1, then a reader (exercises
    /// failover).
    Failover,
}

/// Replicated-disk harness.
pub struct RdHarness {
    /// Number of blocks.
    pub size: u64,
    /// Block size in bytes.
    pub block_size: usize,
    /// Which mutant to run ([`RdMutant::None`] = correct system).
    pub mutant: RdMutant,
    /// Which workload shape.
    pub workload: RdWorkload,
    /// Run a post-recovery verification round.
    pub after_round: bool,
}

impl Default for RdHarness {
    fn default() -> Self {
        RdHarness {
            size: 3,
            block_size: 2,
            mutant: RdMutant::None,
            workload: RdWorkload::Mixed,
            after_round: true,
        }
    }
}

/// The crate's expected-pass scenarios (correct system, every workload),
/// under the registry names `"repldisk/..."`.
pub fn scenarios() -> ScenarioSet {
    let mut set = ScenarioSet::new();
    for (name, desc, workload) in [
        (
            "repldisk/mixed",
            "writer + reader + writer on another address",
            RdWorkload::Mixed,
        ),
        (
            "repldisk/single-write",
            "one write, crash swept through it (Fig. 6)",
            RdWorkload::SingleWrite,
        ),
        (
            "repldisk/write-race",
            "two writers racing on one address",
            RdWorkload::WriteWrite,
        ),
        (
            "repldisk/failover",
            "write, disk-1 failure, then read",
            RdWorkload::Failover,
        ),
    ] {
        set.add(
            name,
            desc,
            RdHarness {
                workload,
                ..RdHarness::default()
            },
        );
    }
    set
}

/// The crate's expected-fail scenarios (mutants the checker must catch),
/// under the registry names `"repldisk/mutant/..."`.
pub fn mutant_scenarios() -> ScenarioSet {
    let mut set = ScenarioSet::new();
    for (name, desc, mutant, workload) in [
        (
            "repldisk/mutant/skip-second-write",
            "skip second disk write",
            RdMutant::SkipSecondWrite,
            RdWorkload::Failover,
        ),
        (
            "repldisk/mutant/zeroing-recovery",
            "zeroing recovery (§1)",
            RdMutant::ZeroingRecovery,
            RdWorkload::SingleWrite,
        ),
        (
            "repldisk/mutant/skip-helping",
            "no helping token",
            RdMutant::SkipHelping,
            RdWorkload::SingleWrite,
        ),
        (
            "repldisk/mutant/commit-early",
            "commit at first write",
            RdMutant::CommitEarly,
            RdWorkload::SingleWrite,
        ),
        (
            "repldisk/mutant/transient-give-up",
            "transient I/O error treated as dead disk",
            RdMutant::GiveUpOnTransient,
            RdWorkload::SingleWrite,
        ),
    ] {
        set.add(
            name,
            desc,
            RdHarness {
                mutant,
                workload,
                ..RdHarness::default()
            },
        );
    }
    set
}

struct RdExec {
    sys: Arc<VerifiedReplDisk>,
    disks: Arc<ModelTwoDisks>,
    workload: RdWorkload,
    after_round: bool,
}

impl RdExec {
    fn shared(&self) -> Arc<VerifiedReplDisk> {
        Arc::clone(&self.sys)
    }
}

impl Execution<RdSpec> for RdExec {
    fn boot(&mut self, w: &World<RdSpec>) {
        self.sys.boot(w);
    }

    fn threads(&mut self, w: &World<RdSpec>) -> Vec<(String, ThreadBody)> {
        let mut out: Vec<(String, ThreadBody)> = Vec::new();
        let bs = self.disks.block_size();
        match self.workload {
            RdWorkload::SingleWrite => {
                let sys = self.shared();
                let w2 = w.clone();
                out.push((
                    "writer".into(),
                    Box::new(move || sys.rd_write(&w2, 0, &vec![7u8; bs])),
                ));
            }
            RdWorkload::Mixed => {
                let sys = self.shared();
                let w2 = w.clone();
                out.push((
                    "writer-0".into(),
                    Box::new(move || sys.rd_write(&w2, 0, &vec![1u8; bs])),
                ));
                let sys = self.shared();
                let w2 = w.clone();
                out.push((
                    "reader-0".into(),
                    Box::new(move || {
                        let v = sys.rd_read(&w2, 0);
                        assert!(v == vec![0u8; bs] || v == vec![1u8; bs]);
                    }),
                ));
                let sys = self.shared();
                let w2 = w.clone();
                out.push((
                    "writer-1".into(),
                    Box::new(move || sys.rd_write(&w2, 1, &vec![2u8; bs])),
                ));
            }
            RdWorkload::WriteWrite => {
                for (name, val) in [("writer-a", 3u8), ("writer-b", 4u8)] {
                    let sys = self.shared();
                    let w2 = w.clone();
                    out.push((
                        name.into(),
                        Box::new(move || sys.rd_write(&w2, 0, &vec![val; bs])),
                    ));
                }
            }
            RdWorkload::Failover => {
                let sys = self.shared();
                let w2 = w.clone();
                out.push((
                    "writer".into(),
                    Box::new(move || sys.rd_write(&w2, 0, &vec![9u8; bs])),
                ));
                let disks = Arc::clone(&self.disks);
                let rt = Arc::clone(&w.rt);
                out.push((
                    "disk-failer".into(),
                    Box::new(move || {
                        rt.yield_point();
                        disks.fail(DiskId::D1);
                    }),
                ));
                let sys = self.shared();
                let w2 = w.clone();
                out.push((
                    "reader".into(),
                    Box::new(move || {
                        let v = sys.rd_read(&w2, 0);
                        assert!(v == vec![0u8; bs] || v == vec![9u8; bs]);
                    }),
                ));
            }
        }
        out
    }

    fn crash_reset(&mut self, _w: &World<RdSpec>) {
        // Disk platters are durable; locks are rebuilt by boot().
    }

    fn recovery(&mut self, w: &World<RdSpec>) -> ThreadBody {
        let sys = self.shared();
        let w2 = w.clone();
        Box::new(move || sys.rd_recover(&w2))
    }

    fn inject_disk_failure(&mut self, _w: &World<RdSpec>, disk: u8) {
        self.disks
            .fail(if disk == 1 { DiskId::D1 } else { DiskId::D2 });
    }

    fn after_recovery(&mut self, w: &World<RdSpec>) -> Vec<(String, ThreadBody)> {
        if !self.after_round {
            return Vec::new();
        }
        let bs = self.disks.block_size();
        let sys = self.shared();
        let w2 = w.clone();
        vec![(
            "post-crash".into(),
            Box::new(move || {
                sys.rd_write(&w2, 2, &vec![5u8; bs]);
                let v = sys.rd_read(&w2, 2);
                assert_eq!(v, vec![5u8; bs]);
            }),
        )]
    }

    fn final_check(&self, w: &World<RdSpec>) -> Result<(), String> {
        // AbsR at quiescence: every *working* disk equals σ (the lock
        // invariant's "values agree when the lock is free" holds at
        // quiescence). A failed disk's platter is frozen and excused —
        // the plan-scheduled failure sweeps fail either disk.
        let sigma: RdState = w.ghost.spec_state();
        let d1_failed = self.disks.is_failed(DiskId::D1);
        let d2_failed = self.disks.is_failed(DiskId::D2);
        for a in 0..self.disks.size() {
            let expect = sigma.get(&a).cloned().unwrap();
            if !d2_failed {
                let d2 = self.disks.peek(DiskId::D2, a);
                if d2 != expect {
                    return Err(format!(
                        "AbsR violated: disk2[{a}] = {d2:?}, spec has {expect:?}"
                    ));
                }
            }
            if !d1_failed {
                let d1 = self.disks.peek(DiskId::D1, a);
                if d1 != expect {
                    return Err(format!(
                        "AbsR violated: disk1[{a}] = {d1:?}, spec has {expect:?}"
                    ));
                }
            }
        }
        Ok(())
    }
}

impl Harness<RdSpec> for RdHarness {
    fn spec(&self) -> RdSpec {
        RdSpec {
            size: self.size,
            block_size: self.block_size,
        }
    }

    fn make(&self, w: &World<RdSpec>) -> Box<dyn Execution<RdSpec>> {
        let disks = ModelTwoDisks::new(Arc::clone(&w.rt), self.size, self.block_size);
        let sys = VerifiedReplDisk::new(w, Arc::clone(&disks), self.mutant);
        Box::new(RdExec {
            sys: Arc::new(sys),
            disks,
            workload: self.workload,
            after_round: self.after_round,
        })
    }

    fn name(&self) -> &str {
        "replicated disk"
    }

    fn fault_surface(&self) -> FaultSurface {
        // The failover workload injects its own disk-1 failure; a
        // plan-scheduled failure on top would exceed the one-failure
        // fault model the replicated disk is specified against.
        FaultSurface {
            transient_disk_io: true,
            two_disk: self.workload != RdWorkload::Failover,
            ..FaultSurface::none()
        }
    }
}
