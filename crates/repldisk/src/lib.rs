//! The replicated disk (§1, §3 of the paper): two physical disks behaving
//! as one logical disk, tolerating a single disk failure, with
//! crash-recovery that preserves linearizability.
//!
//! Three pieces, mirroring the paper's structure:
//!
//! - [`spec`] — the atomic specification (Figure 3);
//! - [`ReplDisk`] in this module — the plain implementation (Figures 4
//!   and 5), runnable on any [`TwoDisks`] device in model or native mode;
//! - [`proof`] — the ghost-instrumented variant (the runtime analog of
//!   the Perennial proof), including the recovery-helping argument of
//!   §5.4, with [`harness`] plugging it into the checker.

pub mod harness;
pub mod proof;
pub mod spec;

use goose_rt::runtime::{GLock, Runtime};
use perennial_disk::two::{DiskId, TwoDisks};
use perennial_disk::Block;
use std::sync::Arc;

/// The plain (uninstrumented) replicated-disk library.
pub struct ReplDisk {
    disks: Arc<dyn TwoDisks>,
    locks: Vec<Arc<dyn GLock>>,
    size: u64,
}

impl ReplDisk {
    /// Creates the library over a two-disk device, with one lock per
    /// address (Figure 4's locking discipline).
    pub fn new(rt: &dyn Runtime, disks: Arc<dyn TwoDisks>) -> Self {
        let size = disks.size();
        ReplDisk {
            disks,
            locks: (0..size).map(|_| rt.new_lock()).collect(),
            size,
        }
    }

    /// Number of logical blocks.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Figure 4's `rd_read`: read disk 1, fall back to disk 2 on failure.
    ///
    /// # Panics
    ///
    /// Panics if both disks have failed (the system tolerates one
    /// failure) or on out-of-bounds addresses.
    pub fn rd_read(&self, a: u64) -> Block {
        self.locks[a as usize].acquire();
        let v = match self.disks.disk_read(DiskId::D1, a) {
            Some(v) => v,
            None => self
                .disks
                .disk_read(DiskId::D2, a)
                .expect("both disks failed"),
        };
        self.locks[a as usize].release();
        v
    }

    /// Figure 4's `rd_write`: write both disks under the address lock.
    pub fn rd_write(&self, a: u64, v: &[u8]) {
        self.locks[a as usize].acquire();
        self.disks.disk_write(DiskId::D1, a, v);
        self.disks.disk_write(DiskId::D2, a, v);
        self.locks[a as usize].release();
    }

    /// Figure 5's `rd_recover`: copy every readable block from disk 1 to
    /// disk 2, logically completing writes that crashed mid-flight.
    pub fn rd_recover(&self) {
        for a in 0..self.size {
            if let Some(v) = self.disks.disk_read(DiskId::D1, a) {
                self.disks.disk_write(DiskId::D2, a, &v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use goose_rt::runtime::NativeRt;
    use goose_rt::sched::ModelRt;
    use perennial_disk::two::ModelTwoDisks;

    /// A native-mode smoke test of the plain library (the verified-mode
    /// tests live in `proof`/`harness`).
    #[test]
    fn native_write_read_failover() {
        let rt = ModelRt::new(0, 100_000);
        let disks = ModelTwoDisks::new(Arc::clone(&rt), 4, 4);
        let native = NativeRt::new();
        let rd = ReplDisk::new(&*native, disks.clone() as Arc<dyn TwoDisks>);
        rd.rd_write(2, &[5, 6, 7, 8]);
        assert_eq!(rd.rd_read(2), vec![5, 6, 7, 8]);
        disks.fail(DiskId::D1);
        // Failover to disk 2, which has the mirrored value.
        assert_eq!(rd.rd_read(2), vec![5, 6, 7, 8]);
    }

    #[test]
    fn recovery_copies_disk1_to_disk2() {
        let rt = ModelRt::new(0, 100_000);
        let disks = ModelTwoDisks::new(Arc::clone(&rt), 3, 4);
        // Simulate a crash mid-write: disks differ at address 1.
        disks.disk_write(DiskId::D1, 1, &[9; 4]);
        assert!(!disks.platters_agree());
        let native = NativeRt::new();
        let rd = ReplDisk::new(&*native, disks.clone() as Arc<dyn TwoDisks>);
        rd.rd_recover();
        assert!(disks.platters_agree());
        assert_eq!(rd.rd_read(1), vec![9; 4]);
    }
}
