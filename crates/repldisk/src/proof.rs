//! The ghost-instrumented replicated disk — the runtime analog of the
//! paper's Perennial proof (§5, worked through §3–§5 as the running
//! example).
//!
//! Proof structure, matching the paper:
//!
//! - **Abstraction relation / lock invariants**: per address `a`, a lock
//!   protects a bundle of recovery leases for `d1[a]` and `d2[a]`, and
//!   when the lock is free the two (logical) disks agree at `a`.
//! - **Crash invariant**: the master copies of `d1[a]`/`d2[a]` live in
//!   the crash invariant (the ghost engine holds them), and whenever the
//!   physical disks differ at `a` there is a helping token `j ⇛
//!   Write(a, v1)` stashed under key `a` (§5.4's per-address helping
//!   assertion).
//! - **Linearization points**: a read linearizes at its (successful) disk
//!   read; a write linearizes at the *second* disk write — before that
//!   the operation has not logically happened, which is exactly why a
//!   crash in between leaves the helping token for recovery to redeem
//!   (Figure 6's diagram).
//!
//! Mutants for the checker's benefit are parameterized by [`RdMutant`];
//! `RdMutant::None` is the correct system.

use crate::spec::{Block, RdOp, RdRet, RdSpec};
use goose_rt::runtime::{GLock, ModelRtExt};
use parking_lot::RwLock;
use perennial::{DurId, GhostUnwrap, Lease, LockInv};
use perennial_checker::World;
use perennial_disk::two::{DiskId, ModelTwoDisks, TwoDisks};
use std::sync::Arc;

/// Deliberate bugs used by mutation tests (DESIGN.md §8).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RdMutant {
    /// The correct system.
    None,
    /// Skip the write to disk 2 (breaks failover and crash recovery).
    SkipSecondWrite,
    /// Recovery zeroes both disks instead of copying (§1's canonical
    /// wrong recovery).
    ZeroingRecovery,
    /// Never stash a helping token (crash mid-write leaves recovery
    /// without the right to complete the operation).
    SkipHelping,
    /// Commit at the first disk write instead of the second (premature
    /// linearization: a crash in between loses a committed write).
    CommitEarly,
    /// Treat a single transient I/O error as a permanent disk failure:
    /// skip the write (or fail the read over to the other disk) instead
    /// of retrying. Invisible to crash sweeps — only the disk-fault
    /// sweep's transient plans expose the silently dropped write.
    GiveUpOnTransient,
}

/// Per-address lock-invariant bundle: the two recovery leases.
pub struct AddrBundle {
    lease1: Lease<Block>,
    lease2: Lease<Block>,
}

/// The instrumented replicated disk.
pub struct VerifiedReplDisk {
    mutant: RdMutant,
    disks: Arc<ModelTwoDisks>,
    d1: Vec<DurId<Block>>,
    d2: Vec<DurId<Block>>,
    lockinvs: Vec<Arc<LockInv<AddrBundle>>>,
    /// Rebuilt on every boot; the `RwLock` is held only long enough to
    /// clone a handle (never across a schedule point).
    locks: RwLock<Vec<Arc<dyn GLock>>>,
    size: u64,
}

impl VerifiedReplDisk {
    /// Sets up durable ghost resources over a fresh two-disk device.
    /// Call once per execution; [`VerifiedReplDisk::boot`] rebuilds the
    /// volatile parts after each (simulated) reboot.
    pub fn new(w: &World<RdSpec>, disks: Arc<ModelTwoDisks>, mutant: RdMutant) -> Self {
        let size = disks.size();
        let block_size = disks.block_size();
        let mut d1 = Vec::new();
        let mut d2 = Vec::new();
        let mut lockinvs = Vec::new();
        for _ in 0..size {
            let (c1, l1) = w.ghost.alloc_durable(vec![0u8; block_size]);
            let (c2, l2) = w.ghost.alloc_durable(vec![0u8; block_size]);
            d1.push(c1);
            d2.push(c2);
            lockinvs.push(Arc::new(LockInv::new(AddrBundle {
                lease1: l1,
                lease2: l2,
            })));
        }
        VerifiedReplDisk {
            mutant,
            disks,
            d1,
            d2,
            lockinvs,
            locks: RwLock::new(Vec::new()),
            size,
        }
    }

    /// Rebuilds in-memory locks (called at every boot).
    pub fn boot(&self, w: &World<RdSpec>) {
        *self.locks.write() = (0..self.size).map(|_| w.rt.new_glock()).collect();
    }

    fn lock(&self, a: u64) -> Arc<dyn GLock> {
        Arc::clone(&self.locks.read()[a as usize])
    }

    /// Number of logical blocks.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// The two-disk device (for fault injection in harnesses).
    pub fn disks(&self) -> &Arc<ModelTwoDisks> {
        &self.disks
    }

    /// Instrumented `rd_read` (Figure 4 plus proof steps).
    pub fn rd_read(&self, w: &World<RdSpec>, a: u64) -> Block {
        let tok = w.ghost.begin_op(RdOp::Read(a)).ghost_unwrap();
        let lock = self.lock(a);
        lock.acquire();
        let bundle = self.lockinvs[a as usize].take().ghost_unwrap();
        // Try disk 1; on failure fall back to disk 2. The successful read
        // is the linearization point: commit adjacently (same atomic
        // step, no schedule point in between).
        let v = if self.mutant == RdMutant::GiveUpOnTransient {
            // Mutant: one transient error and the disk is written off.
            match self.disks.try_disk_read(DiskId::D1, a) {
                Ok(Some(v)) => v,
                _ => self
                    .disks
                    .try_disk_read(DiskId::D2, a)
                    .ok()
                    .flatten()
                    .expect("both disks failed"),
            }
        } else {
            match self.disks.disk_read(DiskId::D1, a) {
                Some(v) => v,
                None => self
                    .disks
                    .disk_read(DiskId::D2, a)
                    .expect("both disks failed"),
            }
        };
        let ret = w.ghost.commit_op(&tok).ghost_unwrap();
        self.lockinvs[a as usize].put(bundle).ghost_unwrap();
        lock.release();
        w.ghost
            .finish_op(tok, &RdRet::Val(v.clone()))
            .ghost_unwrap();
        match ret {
            RdRet::Val(spec_v) => {
                debug_assert_eq!(spec_v, v);
                v
            }
            RdRet::Unit => unreachable!("read committed a write transition"),
        }
    }

    /// Instrumented `rd_write` (Figure 4 plus proof steps, §5.4 helping).
    pub fn rd_write(&self, w: &World<RdSpec>, a: u64, v: &[u8]) {
        let tok = w.ghost.begin_op(RdOp::Write(a, v.to_vec())).ghost_unwrap();
        let lock = self.lock(a);
        lock.acquire();
        let mut bundle = self.lockinvs[a as usize].take().ghost_unwrap();

        // Stash j ⇛ Write(a, v) in the crash invariant before touching
        // disk 1: from here to the second write, a crash leaves the disks
        // divergent at `a` and recovery may complete the op on our
        // behalf.
        if self.mutant != RdMutant::SkipHelping {
            w.ghost.stash_op(&tok, a).ghost_unwrap();
        }

        // First physical write + its ghost mirror (one atomic step).
        if self.mutant == RdMutant::GiveUpOnTransient {
            // Mutant: no retry — a transient error silently drops the
            // write while the ghost mirror (and later the commit) still
            // advance.
            let _ = self.disks.try_disk_write(DiskId::D1, a, v);
        } else {
            self.disks.disk_write(DiskId::D1, a, v);
        }
        w.ghost
            .write_durable(self.d1[a as usize], &mut bundle.lease1, v.to_vec())
            .ghost_unwrap();

        let ret = if self.mutant == RdMutant::CommitEarly {
            if self.mutant != RdMutant::SkipHelping {
                w.ghost.unstash_op(&tok, a).ghost_unwrap();
            }
            w.ghost.commit_op(&tok).ghost_unwrap()
        } else {
            RdRet::Unit
        };

        // Second physical write: the linearization point. Mirror update,
        // token retrieval, and commit are adjacent (same atomic step).
        let ret = if self.mutant == RdMutant::SkipSecondWrite {
            // Mutant: pretend we wrote disk 2.
            if self.mutant != RdMutant::SkipHelping {
                w.ghost.unstash_op(&tok, a).ghost_unwrap();
            }
            w.ghost.commit_op(&tok).ghost_unwrap()
        } else {
            if self.mutant == RdMutant::GiveUpOnTransient {
                let _ = self.disks.try_disk_write(DiskId::D2, a, v);
            } else {
                self.disks.disk_write(DiskId::D2, a, v);
            }
            w.ghost
                .write_durable(self.d2[a as usize], &mut bundle.lease2, v.to_vec())
                .ghost_unwrap();
            if self.mutant == RdMutant::CommitEarly {
                ret
            } else {
                if self.mutant != RdMutant::SkipHelping {
                    w.ghost.unstash_op(&tok, a).ghost_unwrap();
                }
                w.ghost.commit_op(&tok).ghost_unwrap()
            }
        };

        self.lockinvs[a as usize].put(bundle).ghost_unwrap();
        lock.release();
        w.ghost.finish_op(tok, &ret).ghost_unwrap();
    }

    /// Instrumented `rd_recover` (Figure 5 plus the §5.4 helping proof).
    ///
    /// Runs with `⇛Crashing` armed. For each address it copies disk 1 to
    /// disk 2; if the (logical) disks differed there, the copy is
    /// justified by redeeming the helping token the crashed writer left
    /// in the crash invariant. Finally it re-establishes every lock
    /// invariant with fresh leases and spends the crash token.
    pub fn rd_recover(&self, w: &World<RdSpec>) {
        for a in 0..self.size {
            let mut lease1 = w.ghost.recover_lease(self.d1[a as usize]).ghost_unwrap();
            let mut lease2 = w.ghost.recover_lease(self.d2[a as usize]).ghost_unwrap();

            if self.mutant == RdMutant::ZeroingRecovery {
                let z = vec![0u8; self.disks.block_size()];
                self.disks.disk_write(DiskId::D1, a, &z);
                w.ghost
                    .write_durable(self.d1[a as usize], &mut lease1, z.clone())
                    .ghost_unwrap();
                self.disks.disk_write(DiskId::D2, a, &z);
                w.ghost
                    .write_durable(self.d2[a as usize], &mut lease2, z.clone())
                    .ghost_unwrap();
                self.lockinvs[a as usize].reset(AddrBundle { lease1, lease2 });
                continue;
            }

            if let Some(v1) = self.disks.disk_read(DiskId::D1, a) {
                let m2: Block = w.ghost.read_master(self.d2[a as usize]).ghost_unwrap();
                // Copy disk1 → disk2 (Figure 5). The ghost mirror update,
                // and — when the disks differed — the helping commit, are
                // adjacent to the physical write (one atomic step).
                self.disks.disk_write(DiskId::D2, a, &v1);
                w.ghost
                    .write_durable(self.d2[a as usize], &mut lease2, v1.clone())
                    .ghost_unwrap();
                if m2 != v1 {
                    // The disks diverged at `a`: a writer crashed between
                    // its two disk writes and its j ⇛ Write(a, v1) token
                    // is stashed under `a`. Redeem it (§5.4).
                    let (_jid, ret) = w.ghost.help_commit(a).ghost_unwrap();
                    debug_assert_eq!(ret, RdRet::Unit);
                } else if w.ghost.has_help(a) {
                    // Token stashed but the disks agree: the writer
                    // crashed before its first disk write took effect (or
                    // wrote the value already present). The operation
                    // never happened; drop the token.
                    w.ghost.drop_help(a).ghost_unwrap();
                }
            } else if w.ghost.has_help(a) {
                // Disk 1 has failed, so a write that crashed before
                // reaching disk 2 is simply lost with it — the operation
                // never happened (its caller observed no return).
                w.ghost.drop_help(a).ghost_unwrap();
            }
            self.lockinvs[a as usize].reset(AddrBundle { lease1, lease2 });
        }
        w.ghost.recovery_done().ghost_unwrap();
    }
}
