//! The replicated-disk specification — Figure 3 of the paper,
//! transliterated from its Coq DSL into ours.
//!
//! The state is a single logical disk (`Map uint64 block`); reads return
//! the last value written; out-of-bounds access is undefined behaviour;
//! the crash transition is `ret tt` — no data is lost across a crash.

use perennial_spec::{SpecTS, Transition};
use std::collections::BTreeMap;

/// A disk block value at the spec level.
pub type Block = Vec<u8>;

/// Abstract state: one logical disk.
pub type RdState = BTreeMap<u64, Block>;

/// Replicated-disk operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RdOp {
    /// `rd_read(a)` — returns the block at `a`.
    Read(u64),
    /// `rd_write(a, v)` — replaces the block at `a`.
    Write(u64, Block),
}

/// Replicated-disk return values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RdRet {
    /// The block a read returned.
    Val(Block),
    /// A write's unit return.
    Unit,
}

/// The replicated-disk spec: `size` blocks of `block_size` bytes,
/// initially zero.
#[derive(Debug, Clone)]
pub struct RdSpec {
    /// Number of addressable blocks.
    pub size: u64,
    /// Bytes per block.
    pub block_size: usize,
}

impl SpecTS for RdSpec {
    type State = RdState;
    type Op = RdOp;
    type Ret = RdRet;

    fn init(&self) -> RdState {
        (0..self.size)
            .map(|a| (a, vec![0u8; self.block_size]))
            .collect()
    }

    fn op_transition(&self, op: &RdOp) -> Transition<RdState, RdRet> {
        match op.clone() {
            // Figure 3's rd_read: gets, then ret or undefined.
            RdOp::Read(a) => {
                Transition::gets(move |s: &RdState| s.get(&a).cloned()).and_then(|mv| match mv {
                    Some(v) => Transition::ret(RdRet::Val(v)),
                    None => Transition::undefined(),
                })
            }
            // Figure 3's rd_write: gets, then modify or undefined.
            RdOp::Write(a, v) => {
                Transition::gets(move |s: &RdState| s.contains_key(&a)).and_then(move |present| {
                    let v = v.clone();
                    if present {
                        Transition::modify(move |s: &RdState| {
                            let mut s = s.clone();
                            s.insert(a, v.clone());
                            s
                        })
                        .map(|()| RdRet::Unit)
                    } else {
                        Transition::undefined()
                    }
                })
            }
        }
    }

    /// Figure 3's `crash := ret tt`: the logical disk loses nothing.
    fn crash_transition(&self) -> Transition<RdState, ()> {
        Transition::skip()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perennial_spec::system::{ReplayError, SeqReplay};

    #[test]
    fn read_returns_last_write() {
        let mut r = SeqReplay::new(RdSpec {
            size: 2,
            block_size: 4,
        });
        assert_eq!(
            r.step_op(&RdOp::Read(0)).unwrap(),
            RdRet::Val(vec![0, 0, 0, 0])
        );
        r.step_op(&RdOp::Write(0, vec![1, 2, 3, 4])).unwrap();
        assert_eq!(
            r.step_op(&RdOp::Read(0)).unwrap(),
            RdRet::Val(vec![1, 2, 3, 4])
        );
    }

    #[test]
    fn out_of_bounds_is_undefined() {
        let mut r = SeqReplay::new(RdSpec {
            size: 2,
            block_size: 4,
        });
        assert_eq!(r.step_op(&RdOp::Read(5)), Err(ReplayError::Undefined));
        assert_eq!(
            r.step_op(&RdOp::Write(5, vec![0; 4])),
            Err(ReplayError::Undefined)
        );
    }

    #[test]
    fn crash_preserves_logical_disk() {
        let mut r = SeqReplay::new(RdSpec {
            size: 1,
            block_size: 2,
        });
        r.step_op(&RdOp::Write(0, vec![9, 9])).unwrap();
        r.step_crash().unwrap();
        assert_eq!(r.step_op(&RdOp::Read(0)).unwrap(), RdRet::Val(vec![9, 9]));
    }
}
