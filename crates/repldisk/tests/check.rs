//! Model-checking the replicated disk: the paper's running example,
//! including the Figure 6 crash-mid-write scenario, disk failover, and
//! mutants that the checker must reject.

use perennial_checker::{check, CheckConfig, ExecOutcome, Pass};
use repldisk::harness::{RdHarness, RdWorkload};
use repldisk::proof::RdMutant;

fn cfg() -> CheckConfig {
    CheckConfig::builder()
        .dfs_max_executions(400)
        .random_samples(15)
        .random_crash_samples(30)
        .without_passes([Pass::NestedCrash])
        .build()
}

fn cfg_nested() -> CheckConfig {
    CheckConfig::builder()
        .dfs_max_executions(0)
        .random_samples(0)
        .random_crash_samples(0)
        .build()
}

#[test]
fn fig6_single_write_crash_sweep_uses_helping() {
    // Figure 6: a crash in the middle of rd_write; recovery completes the
    // operation via the helping token and the whole sequence refines one
    // crash step. Sweeping the crash point through the write guarantees
    // the "between the two disk writes" position is covered.
    let h = RdHarness {
        workload: RdWorkload::SingleWrite,
        ..RdHarness::default()
    };
    let report = check(&h, &cfg());
    assert!(
        report.passed(),
        "counterexample: {:?}",
        report.counterexample
    );
    // At least one swept crash point must land between the two disk
    // writes, forcing a recovery-helping commit.
    assert!(
        report.helped_ops >= 1,
        "no crash point exercised recovery helping (helped={})",
        report.helped_ops
    );
}

#[test]
fn fig6_crash_during_recovery_is_idempotent() {
    // §5.5's idempotence obligation: recovery must tolerate crashing and
    // re-running. Sweep a second crash through every recovery step.
    let h = RdHarness {
        workload: RdWorkload::SingleWrite,
        after_round: false,
        ..RdHarness::default()
    };
    let report = check(&h, &cfg_nested());
    assert!(
        report.passed(),
        "counterexample: {:?}",
        report.counterexample
    );
    assert!(report.crashes_injected > report.crash_points / 2);
}

#[test]
fn mixed_workload_passes_all_passes() {
    let h = RdHarness::default();
    let report = check(&h, &cfg());
    assert!(
        report.passed(),
        "counterexample: {:?}",
        report.counterexample
    );
    assert!(report.executions > 100);
}

#[test]
fn write_write_race_is_linearizable() {
    let h = RdHarness {
        workload: RdWorkload::WriteWrite,
        ..RdHarness::default()
    };
    let report = check(&h, &cfg());
    assert!(
        report.passed(),
        "counterexample: {:?}",
        report.counterexample
    );
}

#[test]
fn failover_to_second_disk_is_correct() {
    let h = RdHarness {
        workload: RdWorkload::Failover,
        ..RdHarness::default()
    };
    let report = check(&h, &cfg());
    assert!(
        report.passed(),
        "counterexample: {:?}",
        report.counterexample
    );
}

// ---------------------------------------------------------------------
// Mutants (DESIGN.md §8): each must be rejected.
// ---------------------------------------------------------------------

#[test]
fn mutant_skip_second_write_caught_by_failover() {
    let h = RdHarness {
        workload: RdWorkload::Failover,
        mutant: RdMutant::SkipSecondWrite,
        ..RdHarness::default()
    };
    let report = check(&h, &cfg());
    let cx = report
        .counterexample
        .expect("skip-second-write must be caught");
    assert!(
        matches!(
            cx.outcome,
            ExecOutcome::Violation(_) | ExecOutcome::FinalCheckFailed(_) | ExecOutcome::Bug(_)
        ),
        "unexpected outcome {:?}",
        cx.outcome
    );
}

#[test]
fn mutant_zeroing_recovery_caught() {
    // §1: "it would be wrong for recovery to make the disks in sync by
    // zeroing them both."
    let h = RdHarness {
        workload: RdWorkload::SingleWrite,
        mutant: RdMutant::ZeroingRecovery,
        ..RdHarness::default()
    };
    let report = check(&h, &cfg());
    let cx = report
        .counterexample
        .expect("zeroing recovery must be caught");
    assert!(!cx.crash_points.is_empty(), "only reachable via a crash");
}

#[test]
fn mutant_skip_helping_caught() {
    // Without the stashed token, recovery has no right to complete the
    // crashed write — the ghost engine rejects the repair.
    let h = RdHarness {
        workload: RdWorkload::SingleWrite,
        mutant: RdMutant::SkipHelping,
        ..RdHarness::default()
    };
    let report = check(&h, &cfg());
    let cx = report.counterexample.expect("skip-helping must be caught");
    assert!(
        matches!(cx.outcome, ExecOutcome::Violation(_)),
        "expected a ghost violation, got {:?}",
        cx.outcome
    );
    assert!(!cx.crash_points.is_empty(), "only reachable via a crash");
}

#[test]
fn mutant_commit_early_caught() {
    // Premature linearization: committing at the first disk write means a
    // crash in between loses a committed operation.
    let h = RdHarness {
        workload: RdWorkload::SingleWrite,
        mutant: RdMutant::CommitEarly,
        ..RdHarness::default()
    };
    let report = check(&h, &cfg());
    let cx = report.counterexample.expect("commit-early must be caught");
    assert!(!cx.crash_points.is_empty(), "only reachable via a crash");
}

// ---------------------------------------------------------------------
// Fault-injection sweeps (transient I/O errors and plan-scheduled disk
// failures).
// ---------------------------------------------------------------------

fn cfg_faults() -> CheckConfig {
    CheckConfig::builder()
        .dfs_max_executions(0)
        .random_samples(0)
        .random_crash_samples(0)
        .without_passes([Pass::NestedCrash])
        .with_passes([Pass::DiskFault, Pass::TornWrite, Pass::NetFault])
        .build()
}

#[test]
fn transient_give_up_invisible_without_fault_sweep() {
    // Without a transient plan no I/O op ever errors, so the mutant's
    // missing retry never fires — exactly why the disk-fault sweep
    // exists.
    let h = RdHarness {
        mutant: RdMutant::GiveUpOnTransient,
        workload: RdWorkload::SingleWrite,
        ..RdHarness::default()
    };
    let report = check(&h, &cfg());
    assert!(
        report.passed(),
        "plain sweeps should NOT catch give-up-on-transient: {:?}",
        report.counterexample
    );
}

#[test]
fn transient_give_up_caught_by_disk_fault_sweep() {
    let h = RdHarness {
        mutant: RdMutant::GiveUpOnTransient,
        workload: RdWorkload::SingleWrite,
        ..RdHarness::default()
    };
    let report = check(&h, &cfg_faults());
    let cx = report
        .counterexample
        .expect("disk-fault sweep must catch give-up-on-transient");
    assert_eq!(cx.pass, "disk-fault-sweep");
    assert!(!cx.faults.is_empty(), "counterexample records the plan");
}

#[test]
fn repldisk_passes_disk_fault_sweep() {
    // Transient errors are absorbed by retries, and a plan-scheduled
    // permanent failure of either disk (including during recovery) is
    // within the replicated disk's one-failure fault model.
    let cfg = cfg_faults();
    for workload in [
        RdWorkload::SingleWrite,
        RdWorkload::Mixed,
        RdWorkload::Failover,
    ] {
        let h = RdHarness {
            workload,
            ..RdHarness::default()
        };
        let report = check(&h, &cfg);
        assert!(report.passed(), "{workload:?}: {:?}", report.counterexample);
    }
}
