//! Reusable specification fixtures for tests across the workspace.
//!
//! Two tiny specs exercise the two interesting crash behaviours:
//!
//! - [`RegSpec`]: a durable register file; crash preserves everything
//!   (like the replicated disk's `crash := ret tt`).
//! - [`BufSpec`]: an append-only log with a volatile tail; crash drops the
//!   un-persisted suffix (like group commit).

use crate::system::SpecTS;
use crate::transition::Transition;
use std::collections::BTreeMap;

/// A durable register file of `size` registers initialized to zero.
#[derive(Debug, Clone)]
pub struct RegSpec {
    /// Number of registers.
    pub size: u64,
}

/// Operations on [`RegSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegOp {
    /// Read register `a`; returns `Some(value)`.
    Read(u64),
    /// Write `v` to register `a`; returns `None`.
    Write(u64, u64),
}

/// State of [`RegSpec`]: register → value.
pub type RegState = BTreeMap<u64, u64>;

impl SpecTS for RegSpec {
    type State = RegState;
    type Op = RegOp;
    type Ret = Option<u64>;

    fn init(&self) -> RegState {
        (0..self.size).map(|a| (a, 0)).collect()
    }

    fn op_transition(&self, op: &RegOp) -> Transition<RegState, Option<u64>> {
        match op.clone() {
            RegOp::Read(a) => {
                Transition::gets(move |s: &RegState| s.get(&a).copied()).and_then(|mv| match mv {
                    Some(v) => Transition::ret(Some(v)),
                    None => Transition::undefined(),
                })
            }
            RegOp::Write(a, v) => Transition::gets(move |s: &RegState| s.contains_key(&a))
                .and_then(move |present| {
                    if present {
                        Transition::modify(move |s: &RegState| {
                            let mut s = s.clone();
                            s.insert(a, v);
                            s
                        })
                        .map(|()| None)
                    } else {
                        Transition::undefined()
                    }
                }),
        }
    }

    fn crash_transition(&self) -> Transition<RegState, ()> {
        Transition::skip()
    }
}

/// An append-only log whose tail beyond `persisted` may be lost on crash.
#[derive(Debug, Clone)]
pub struct BufSpec;

/// State of [`BufSpec`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BufState {
    /// All appended entries, in order.
    pub entries: Vec<u64>,
    /// How many leading entries are persisted (survive a crash).
    pub persisted: usize,
}

/// Operations on [`BufSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BufOp {
    /// Append an entry (buffered; durable only once flushed).
    Append(u64),
    /// Read the whole logical log.
    ReadAll,
}

/// Return values for [`BufSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BufRet {
    /// `Append` acknowledgement.
    Done,
    /// `ReadAll` result.
    Entries(Vec<u64>),
}

impl BufSpec {
    /// The internal flush transition: persists everything buffered.
    pub fn flush_transition() -> Transition<BufState, ()> {
        Transition::modify(|s: &BufState| {
            let mut s = s.clone();
            s.persisted = s.entries.len();
            s
        })
    }
}

impl SpecTS for BufSpec {
    type State = BufState;
    type Op = BufOp;
    type Ret = BufRet;

    fn init(&self) -> BufState {
        BufState::default()
    }

    fn op_transition(&self, op: &BufOp) -> Transition<BufState, BufRet> {
        match op.clone() {
            BufOp::Append(v) => Transition::modify(move |s: &BufState| {
                let mut s = s.clone();
                s.entries.push(v);
                s
            })
            .map(|()| BufRet::Done),
            BufOp::ReadAll => Transition::gets(|s: &BufState| BufRet::Entries(s.entries.clone())),
        }
    }

    fn crash_transition(&self) -> Transition<BufState, ()> {
        Transition::modify(|s: &BufState| {
            let mut s = s.clone();
            s.entries.truncate(s.persisted);
            s
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SeqReplay;

    #[test]
    fn bufspec_crash_drops_unpersisted_tail() {
        let mut r = SeqReplay::new(BufSpec);
        r.step_op(&BufOp::Append(1)).unwrap();
        r.step_op(&BufOp::Append(2)).unwrap();
        // Flush persists both; a third append stays buffered.
        let mut s = r.state().clone();
        let (s2, ()) = BufSpec::flush_transition().run(&s).unwrap();
        s = s2;
        let mut r = SeqReplay::from_state(BufSpec, s);
        r.step_op(&BufOp::Append(3)).unwrap();
        r.step_crash().unwrap();
        assert_eq!(
            r.step_op(&BufOp::ReadAll).unwrap(),
            BufRet::Entries(vec![1, 2])
        );
    }

    #[test]
    fn regspec_crash_preserves_all() {
        let mut r = SeqReplay::new(RegSpec { size: 2 });
        r.step_op(&RegOp::Write(1, 5)).unwrap();
        r.step_crash().unwrap();
        assert_eq!(r.step_op(&RegOp::Read(1)).unwrap(), Some(5));
    }
}
