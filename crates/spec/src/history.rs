//! Observable histories: invocations, responses, crashes.
//!
//! The external behaviour a refinement constrains is the sequence of
//! invocations and return values of top-level procedures, plus crash
//! boundaries (§3.1: "the same external I/O"). Histories are produced by
//! the checker while driving an implementation and consumed by the
//! linearizability checker and the ghost-trace validator.

use std::fmt::Debug;

/// Identifier of one operation instance — the `j` of the paper's
/// `j ⇛ op` specification resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Jid(pub u64);

impl std::fmt::Display for Jid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "j{}", self.0)
    }
}

/// One observable event.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind<Op, Ret> {
    /// Thread invoked operation `op`.
    Invoke(Op),
    /// The operation returned `ret` to its caller.
    Return(Ret),
    /// The whole system crashed (all in-flight operations are cut off).
    Crash,
    /// Recovery completed; the system accepts new operations.
    Recovered,
}

/// An event tagged with the operation instance it belongs to.
///
/// `Crash`/`Recovered` events use [`Jid`] `u64::MAX` by convention and the
/// [`Event::system`] constructor.
#[derive(Debug, Clone, PartialEq)]
pub struct Event<Op, Ret> {
    /// Which operation instance this event belongs to.
    pub jid: Jid,
    /// What happened.
    pub kind: EventKind<Op, Ret>,
}

impl<Op, Ret> Event<Op, Ret> {
    /// A system-wide event (crash / recovered) not tied to an operation.
    pub fn system(kind: EventKind<Op, Ret>) -> Self {
        Event {
            jid: Jid(u64::MAX),
            kind,
        }
    }
}

/// An ordered sequence of observable events from one execution.
#[derive(Debug, Clone)]
pub struct History<Op, Ret> {
    events: Vec<Event<Op, Ret>>,
}

impl<Op, Ret> Default for History<Op, Ret> {
    fn default() -> Self {
        History { events: Vec::new() }
    }
}

impl<Op: Clone + Debug, Ret: Clone + Debug> History<Op, Ret> {
    /// An empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event.
    pub fn push(&mut self, ev: Event<Op, Ret>) {
        self.events.push(ev);
    }

    /// All events in order.
    pub fn events(&self) -> &[Event<Op, Ret>] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the history is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Operation instances that were invoked but never returned before the
    /// end of the history (or before the next crash after their
    /// invocation) — the in-flight set the paper's crash reasoning is
    /// about.
    pub fn incomplete(&self) -> Vec<(Jid, Op)> {
        let mut pending: Vec<(Jid, Op)> = Vec::new();
        for ev in &self.events {
            match &ev.kind {
                EventKind::Invoke(op) => pending.push((ev.jid, op.clone())),
                EventKind::Return(_) => pending.retain(|(j, _)| *j != ev.jid),
                EventKind::Crash => { /* in-flight ops stay pending; they were cut off */ }
                EventKind::Recovered => {}
            }
        }
        pending
    }

    /// Completed operations as `(jid, op, ret)` triples, in return order.
    pub fn completed(&self) -> Vec<(Jid, Op, Ret)> {
        let mut invoked: Vec<(Jid, Op)> = Vec::new();
        let mut done = Vec::new();
        for ev in &self.events {
            match &ev.kind {
                EventKind::Invoke(op) => invoked.push((ev.jid, op.clone())),
                EventKind::Return(ret) => {
                    if let Some(pos) = invoked.iter().position(|(j, _)| *j == ev.jid) {
                        let (j, op) = invoked.remove(pos);
                        done.push((j, op, ret.clone()));
                    }
                }
                _ => {}
            }
        }
        done
    }

    /// Number of crash events.
    pub fn crash_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Crash))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type H = History<&'static str, u64>;

    fn ev(j: u64, kind: EventKind<&'static str, u64>) -> Event<&'static str, u64> {
        Event { jid: Jid(j), kind }
    }

    #[test]
    fn completed_pairs_invoke_and_return() {
        let mut h = H::new();
        h.push(ev(1, EventKind::Invoke("read")));
        h.push(ev(2, EventKind::Invoke("write")));
        h.push(ev(2, EventKind::Return(0)));
        h.push(ev(1, EventKind::Return(7)));
        let done = h.completed();
        assert_eq!(done.len(), 2);
        assert_eq!(done[0], (Jid(2), "write", 0));
        assert_eq!(done[1], (Jid(1), "read", 7));
        assert!(h.incomplete().is_empty());
    }

    #[test]
    fn incomplete_tracks_inflight_across_crash() {
        let mut h = H::new();
        h.push(ev(1, EventKind::Invoke("write")));
        h.push(Event::system(EventKind::Crash));
        h.push(Event::system(EventKind::Recovered));
        assert_eq!(h.incomplete(), vec![(Jid(1), "write")]);
        assert_eq!(h.crash_count(), 1);
    }

    #[test]
    fn empty_history() {
        let h = H::new();
        assert!(h.is_empty());
        assert_eq!(h.len(), 0);
        assert!(h.completed().is_empty());
    }
}
