//! Transition-system specification DSL for the Perennial reproduction.
//!
//! The paper (§3.1) writes specifications as transition systems embedded in
//! Coq: a state type plus, for every top-level operation, a transition built
//! from a small set of primitives (`gets`, `modify`, `ret`, `undefined`).
//! This crate provides the same DSL embedded in Rust.
//!
//! A [`Transition`] is a (possibly partial) function from a state to a new
//! state and a return value. Partiality comes in two flavours mirroring the
//! paper:
//!
//! - [`Outcome::Undefined`]: the caller triggered *undefined behaviour*
//!   (e.g. an out-of-bounds disk address). Refinement obligations only
//!   apply to executions that avoid undefined behaviour, exactly as in §8.3
//!   of the paper.
//! - [`Outcome::Blocked`]: the transition is not enabled in this state.
//!   This is used by specifications with guards (e.g. group commit may only
//!   persist a prefix of the buffered transactions).
//!
//! A complete specification is a [`SpecTS`]: an initial state, an
//! op-indexed family of transitions, and a distinguished crash transition
//! (Figure 3 of the paper shows all three for the replicated disk).
//!
//! # Examples
//!
//! The replicated-disk specification of Figure 3, transliterated:
//!
//! ```
//! use perennial_spec::{Transition, Outcome};
//! use std::collections::BTreeMap;
//!
//! type State = BTreeMap<u64, u8>;
//!
//! fn rd_read(a: u64) -> Transition<State, u8> {
//!     Transition::gets(move |s: &State| s.get(&a).copied()).and_then(|mv| match mv {
//!         Some(v) => Transition::ret(v),
//!         None => Transition::undefined(),
//!     })
//! }
//!
//! let mut s = State::new();
//! s.insert(3, 7);
//! assert_eq!(rd_read(3).run(&s), Outcome::Ok(s.clone(), 7));
//! assert_eq!(rd_read(9).run(&s), Outcome::Undefined);
//! ```

pub mod fixtures;
pub mod history;
pub mod system;
pub mod transition;

pub use history::{Event, EventKind, History, Jid};
pub use system::{SeqReplay, SpecTS};
pub use transition::{Outcome, Transition};
