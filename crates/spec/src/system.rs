//! Complete specifications: state, operations, crash transition.

use crate::transition::{Outcome, Transition};
use std::fmt::Debug;

/// A specification transition system (§3.1 of the paper).
///
/// A `SpecTS` packages the abstract state, the family of top-level
/// operations, the crash transition, and the initial state. Implementations
/// are *refined* against it: every concrete execution (including crashes
/// followed by recovery) must correspond to some interleaving of these
/// atomic transitions — the paper's *concurrent recovery refinement*.
pub trait SpecTS: Send + Sync + 'static {
    /// Abstract state (e.g. `Map<u64, Block>` for the replicated disk).
    type State: Clone + Debug + PartialEq + Send + Sync + 'static;
    /// Operation descriptors, including their arguments.
    type Op: Clone + Debug + PartialEq + Send + Sync + 'static;
    /// Return values. A single type for all ops keeps histories simple;
    /// specs use an enum when ops return different things.
    type Ret: Clone + Debug + PartialEq + Send + Sync + 'static;

    /// The initial abstract state.
    fn init(&self) -> Self::State;

    /// The atomic transition for operation `op`.
    fn op_transition(&self, op: &Self::Op) -> Transition<Self::State, Self::Ret>;

    /// The atomic crash transition (Figure 3's `crash`). For most storage
    /// specs this is `ret tt` (nothing is lost); group commit's crash
    /// drops un-persisted buffered transactions.
    fn crash_transition(&self) -> Transition<Self::State, ()>;

    /// Whether `committed` is a legitimate resolution of the invoked
    /// operation `invoked`.
    ///
    /// Most operations commit exactly as invoked (the default). Operations
    /// with implementation-chosen nondeterminism (e.g. Mailboat's
    /// `Deliver` picks a fresh message id during execution) commit a
    /// *refined* op carrying the choice; the spec declares which
    /// refinements are faithful to the invocation.
    fn op_refines(&self, invoked: &Self::Op, committed: &Self::Op) -> bool {
        invoked == committed
    }
}

/// A sequential replayer for spec histories.
///
/// The ghost-trace validator (crates/core) and the linearizability checker
/// (crates/checker) both reduce their question to "does this *sequence* of
/// op/crash steps run from the initial state with these return values?" —
/// which this replayer answers.
#[derive(Debug)]
pub struct SeqReplay<S: SpecTS> {
    spec: S,
    state: S::State,
    steps: usize,
}

impl<S: SpecTS> SeqReplay<S> {
    /// Starts a replay from the spec's initial state.
    pub fn new(spec: S) -> Self {
        let state = spec.init();
        SeqReplay {
            spec,
            state,
            steps: 0,
        }
    }

    /// Starts a replay from an explicit state.
    pub fn from_state(spec: S, state: S::State) -> Self {
        SeqReplay {
            spec,
            state,
            steps: 0,
        }
    }

    /// The current abstract state.
    pub fn state(&self) -> &S::State {
        &self.state
    }

    /// Number of steps replayed so far.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Applies `op`; on success returns the value the spec produced.
    pub fn step_op(&mut self, op: &S::Op) -> Result<S::Ret, ReplayError> {
        match self.spec.op_transition(op).run(&self.state) {
            Outcome::Ok(s2, v) => {
                self.state = s2;
                self.steps += 1;
                Ok(v)
            }
            Outcome::Undefined => Err(ReplayError::Undefined),
            Outcome::Blocked => Err(ReplayError::Blocked),
        }
    }

    /// Applies `op` and additionally requires the returned value to equal
    /// `expected` (what the implementation actually returned).
    pub fn step_op_expect(&mut self, op: &S::Op, expected: &S::Ret) -> Result<(), ReplayError> {
        let got = self.step_op(op)?;
        if &got == expected {
            Ok(())
        } else {
            Err(ReplayError::RetMismatch {
                expected: format!("{expected:?}"),
                got: format!("{got:?}"),
            })
        }
    }

    /// Applies the crash transition.
    pub fn step_crash(&mut self) -> Result<(), ReplayError> {
        match self.spec.crash_transition().run(&self.state) {
            Outcome::Ok(s2, ()) => {
                self.state = s2;
                self.steps += 1;
                Ok(())
            }
            Outcome::Undefined => Err(ReplayError::Undefined),
            Outcome::Blocked => Err(ReplayError::Blocked),
        }
    }
}

/// Why a sequential replay failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayError {
    /// The step triggered spec-level undefined behaviour.
    Undefined,
    /// The step was not enabled in the current abstract state.
    Blocked,
    /// The spec's return value differed from the implementation's.
    RetMismatch {
        /// Implementation-observed value.
        expected: String,
        /// Spec-produced value.
        got: String,
    },
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::Undefined => write!(f, "spec step hit undefined behaviour"),
            ReplayError::Blocked => write!(f, "spec step not enabled"),
            ReplayError::RetMismatch { expected, got } => {
                write!(
                    f,
                    "return mismatch: impl returned {expected}, spec produced {got}"
                )
            }
        }
    }
}

impl std::error::Error for ReplayError {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    /// A register-file spec used as the crate's test fixture.
    #[derive(Debug, Clone)]
    pub struct RegSpec {
        pub size: u64,
    }

    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum RegOp {
        Read(u64),
        Write(u64, u64),
    }

    pub type RegState = BTreeMap<u64, u64>;

    impl SpecTS for RegSpec {
        type State = RegState;
        type Op = RegOp;
        type Ret = Option<u64>;

        fn init(&self) -> RegState {
            (0..self.size).map(|a| (a, 0)).collect()
        }

        fn op_transition(&self, op: &RegOp) -> Transition<RegState, Option<u64>> {
            match op.clone() {
                RegOp::Read(a) => Transition::gets(move |s: &RegState| s.get(&a).copied())
                    .and_then(|mv| match mv {
                        Some(v) => Transition::ret(Some(v)),
                        None => Transition::undefined(),
                    }),
                RegOp::Write(a, v) => Transition::gets(move |s: &RegState| s.contains_key(&a))
                    .and_then(move |present| {
                        if present {
                            Transition::modify(move |s: &RegState| {
                                let mut s = s.clone();
                                s.insert(a, v);
                                s
                            })
                            .map(|()| None)
                        } else {
                            Transition::undefined()
                        }
                    }),
            }
        }

        fn crash_transition(&self) -> Transition<RegState, ()> {
            Transition::skip()
        }
    }

    #[test]
    fn replay_sequence() {
        let mut r = SeqReplay::new(RegSpec { size: 4 });
        assert_eq!(r.step_op(&RegOp::Read(0)).unwrap(), Some(0));
        assert_eq!(r.step_op(&RegOp::Write(0, 9)).unwrap(), None);
        assert_eq!(r.step_op(&RegOp::Read(0)).unwrap(), Some(9));
        r.step_crash().unwrap();
        // Crash loses nothing for this spec.
        assert_eq!(r.step_op(&RegOp::Read(0)).unwrap(), Some(9));
        assert_eq!(r.steps(), 5);
    }

    #[test]
    fn replay_detects_ret_mismatch() {
        let mut r = SeqReplay::new(RegSpec { size: 4 });
        let err = r.step_op_expect(&RegOp::Read(0), &Some(1)).unwrap_err();
        assert!(matches!(err, ReplayError::RetMismatch { .. }));
    }

    #[test]
    fn replay_surfaces_undefined() {
        let mut r = SeqReplay::new(RegSpec { size: 2 });
        assert_eq!(r.step_op(&RegOp::Read(7)), Err(ReplayError::Undefined));
    }
}
