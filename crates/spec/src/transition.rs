//! The transition DSL: `ret`, `gets`, `modify`, `undefined`, and monadic
//! composition, mirroring the Coq-embedded DSL of the paper's §3.1.

use std::fmt;
use std::sync::Arc;

/// Result of running a [`Transition`] in a given state.
#[derive(Clone, PartialEq, Eq)]
pub enum Outcome<S, T> {
    /// The transition is enabled: it steps to the new state and returns `T`.
    Ok(S, T),
    /// The caller triggered undefined behaviour (out-of-bounds address,
    /// racy slice access, ...). Refinement only constrains executions that
    /// avoid this outcome.
    Undefined,
    /// The transition is not enabled in this state (a guard failed).
    Blocked,
}

impl<S: fmt::Debug, T: fmt::Debug> fmt::Debug for Outcome<S, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Outcome::Ok(s, t) => f.debug_tuple("Ok").field(s).field(t).finish(),
            Outcome::Undefined => write!(f, "Undefined"),
            Outcome::Blocked => write!(f, "Blocked"),
        }
    }
}

impl<S, T> Outcome<S, T> {
    /// Returns `true` when the transition was enabled.
    pub fn is_ok(&self) -> bool {
        matches!(self, Outcome::Ok(..))
    }

    /// Extracts the stepped state and value, panicking on partial outcomes.
    ///
    /// # Panics
    ///
    /// Panics if the outcome is [`Outcome::Undefined`] or
    /// [`Outcome::Blocked`]; intended for tests and examples.
    pub fn unwrap(self) -> (S, T) {
        match self {
            Outcome::Ok(s, t) => (s, t),
            Outcome::Undefined => panic!("transition outcome was Undefined"),
            Outcome::Blocked => panic!("transition outcome was Blocked"),
        }
    }
}

/// The boxed step function inside a [`Transition`].
type StepFn<S, T> = dyn Fn(&S) -> Outcome<S, T> + Send + Sync;

/// A specification transition: a partial function from states to
/// (state, value) pairs.
///
/// Transitions are cheaply cloneable (internally reference counted) so a
/// spec can hand the same transition to many checker threads.
pub struct Transition<S, T> {
    run: Arc<StepFn<S, T>>,
}

impl<S, T> Clone for Transition<S, T> {
    fn clone(&self) -> Self {
        Transition {
            run: Arc::clone(&self.run),
        }
    }
}

impl<S, T> fmt::Debug for Transition<S, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Transition(..)")
    }
}

impl<S: Clone + 'static, T: 'static> Transition<S, T> {
    /// Wraps a raw step function as a transition.
    pub fn new(f: impl Fn(&S) -> Outcome<S, T> + Send + Sync + 'static) -> Self {
        Transition { run: Arc::new(f) }
    }

    /// Runs the transition in state `s`.
    pub fn run(&self, s: &S) -> Outcome<S, T> {
        (self.run)(s)
    }

    /// `ret v` — the identity transition returning `v`.
    pub fn ret(v: T) -> Self
    where
        T: Clone + Send + Sync,
    {
        Transition::new(move |s: &S| Outcome::Ok(s.clone(), v.clone()))
    }

    /// `undefined` — the caller triggered undefined behaviour.
    pub fn undefined() -> Self {
        Transition::new(|_s: &S| Outcome::Undefined)
    }

    /// `blocked` — a disabled transition (failed guard).
    pub fn blocked() -> Self {
        Transition::new(|_s: &S| Outcome::Blocked)
    }

    /// `gets f` — observes the state without changing it.
    pub fn gets(f: impl Fn(&S) -> T + Send + Sync + 'static) -> Self {
        Transition::new(move |s: &S| Outcome::Ok(s.clone(), f(s)))
    }

    /// Monadic bind: run `self`, then run the transition produced by `f`
    /// from the intermediate state.
    pub fn and_then<U: 'static>(
        self,
        f: impl Fn(T) -> Transition<S, U> + Send + Sync + 'static,
    ) -> Transition<S, U> {
        Transition::new(move |s: &S| match self.run(s) {
            Outcome::Ok(s2, v) => f(v).run(&s2),
            Outcome::Undefined => Outcome::Undefined,
            Outcome::Blocked => Outcome::Blocked,
        })
    }

    /// Maps the returned value.
    pub fn map<U: 'static>(self, f: impl Fn(T) -> U + Send + Sync + 'static) -> Transition<S, U> {
        Transition::new(move |s: &S| match self.run(s) {
            Outcome::Ok(s2, v) => Outcome::Ok(s2, f(v)),
            Outcome::Undefined => Outcome::Undefined,
            Outcome::Blocked => Outcome::Blocked,
        })
    }

    /// Replaces the returned value with unit, keeping the state change.
    pub fn ignore_ret(self) -> Transition<S, ()> {
        self.map(|_| ())
    }
}

impl<S: Clone + 'static> Transition<S, ()> {
    /// `modify f` — updates the state, returning unit.
    pub fn modify(f: impl Fn(&S) -> S + Send + Sync + 'static) -> Self {
        Transition::new(move |s: &S| Outcome::Ok(f(s), ()))
    }

    /// `check p` — undefined behaviour unless `p` holds (a UB guard).
    pub fn check(p: impl Fn(&S) -> bool + Send + Sync + 'static) -> Self {
        Transition::new(move |s: &S| {
            if p(s) {
                Outcome::Ok(s.clone(), ())
            } else {
                Outcome::Undefined
            }
        })
    }

    /// `guard p` — blocked unless `p` holds (an enabledness guard).
    pub fn guard(p: impl Fn(&S) -> bool + Send + Sync + 'static) -> Self {
        Transition::new(move |s: &S| {
            if p(s) {
                Outcome::Ok(s.clone(), ())
            } else {
                Outcome::Blocked
            }
        })
    }

    /// The identity transition (`ret ()` without the `Clone` bound on `T`).
    pub fn skip() -> Self {
        Transition::new(|s: &S| Outcome::Ok(s.clone(), ()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    type S = BTreeMap<u64, u64>;

    fn st(pairs: &[(u64, u64)]) -> S {
        pairs.iter().copied().collect()
    }

    #[test]
    fn ret_preserves_state() {
        let t: Transition<S, u64> = Transition::ret(42);
        assert_eq!(t.run(&st(&[(1, 2)])), Outcome::Ok(st(&[(1, 2)]), 42));
    }

    #[test]
    fn gets_observes_without_mutation() {
        let t: Transition<S, Option<u64>> = Transition::gets(|s: &S| s.get(&1).copied());
        assert_eq!(t.run(&st(&[(1, 5)])), Outcome::Ok(st(&[(1, 5)]), Some(5)));
        assert_eq!(t.run(&st(&[])), Outcome::Ok(st(&[]), None));
    }

    #[test]
    fn modify_updates_state() {
        let t: Transition<S, ()> = Transition::modify(|s: &S| {
            let mut s = s.clone();
            s.insert(7, 9);
            s
        });
        assert_eq!(t.run(&st(&[])), Outcome::Ok(st(&[(7, 9)]), ()));
    }

    #[test]
    fn undefined_propagates_through_bind() {
        let t: Transition<S, u64> =
            Transition::<S, u64>::undefined().and_then(|_| Transition::ret(1));
        assert_eq!(t.run(&st(&[])), Outcome::Undefined);
        let t2: Transition<S, u64> =
            Transition::<S, u64>::ret(3).and_then(|_| Transition::undefined());
        assert_eq!(t2.run(&st(&[])), Outcome::Undefined);
    }

    #[test]
    fn blocked_propagates_through_bind() {
        let t: Transition<S, ()> = Transition::<S, ()>::blocked().and_then(|_| Transition::skip());
        assert_eq!(t.run(&st(&[])), Outcome::Blocked);
    }

    #[test]
    fn check_is_ub_guard() {
        let t = Transition::<S, ()>::check(|s| s.contains_key(&1));
        assert!(t.run(&st(&[(1, 1)])).is_ok());
        assert_eq!(t.run(&st(&[])), Outcome::Undefined);
    }

    #[test]
    fn guard_is_enabledness() {
        let t = Transition::<S, ()>::guard(|s| s.is_empty());
        assert!(t.run(&st(&[])).is_ok());
        assert_eq!(t.run(&st(&[(1, 1)])), Outcome::Blocked);
    }

    #[test]
    fn bind_threads_state() {
        // Figure 3's rd_write shape: lookup, then conditional modify.
        let write = |a: u64, v: u64| -> Transition<S, ()> {
            Transition::gets(move |s: &S| s.get(&a).copied()).and_then(move |mv| match mv {
                Some(_) => Transition::modify(move |s: &S| {
                    let mut s = s.clone();
                    s.insert(a, v);
                    s
                }),
                None => Transition::undefined(),
            })
        };
        assert_eq!(
            write(1, 10).run(&st(&[(1, 0)])),
            Outcome::Ok(st(&[(1, 10)]), ())
        );
        assert_eq!(write(2, 10).run(&st(&[(1, 0)])), Outcome::Undefined);
    }

    #[test]
    fn map_transforms_value_only() {
        let t: Transition<S, u64> = Transition::gets(|s: &S| s.len() as u64).map(|n| n * 2);
        assert_eq!(
            t.run(&st(&[(1, 1), (2, 2)])),
            Outcome::Ok(st(&[(1, 1), (2, 2)]), 4)
        );
    }
}
