//! Property-based tests for the transition DSL: monad laws and
//! partiality propagation hold for arbitrary state contents.

use perennial_spec::{Outcome, Transition};
use proptest::prelude::*;
use std::collections::BTreeMap;

type S = BTreeMap<u64, u64>;

fn arb_state() -> impl Strategy<Value = S> {
    proptest::collection::btree_map(0u64..16, 0u64..100, 0..8)
}

proptest! {
    // Left identity: ret(v).and_then(f) == f(v).
    #[test]
    fn monad_left_identity(s in arb_state(), v in 0u64..100, k in 0u64..16) {
        let f = move |x: u64| -> Transition<S, u64> {
            Transition::gets(move |st: &S| st.get(&k).copied().unwrap_or(0) + x)
        };
        let lhs = Transition::<S, u64>::ret(v).and_then(f);
        let rhs = f(v);
        prop_assert_eq!(lhs.run(&s), rhs.run(&s));
    }

    // Right identity: t.and_then(ret) == t.
    #[test]
    fn monad_right_identity(s in arb_state(), k in 0u64..16) {
        let t: Transition<S, u64> = Transition::gets(move |st: &S| st.get(&k).copied().unwrap_or(7));
        let lhs = t.clone().and_then(Transition::ret);
        prop_assert_eq!(lhs.run(&s), t.run(&s));
    }

    // Associativity: (t >>= f) >>= g == t >>= (|x| f(x) >>= g).
    #[test]
    fn monad_associativity(s in arb_state(), k in 0u64..16, d in 1u64..5) {
        let t: Transition<S, u64> = Transition::gets(move |st: &S| st.len() as u64 + k);
        let f = move |x: u64| -> Transition<S, u64> { Transition::ret(x + d) };
        let g = move |x: u64| -> Transition<S, u64> {
            Transition::modify(move |st: &S| {
                let mut st = st.clone();
                st.insert(x % 16, x);
                st
            })
            .map(move |()| x * 2)
        };
        let lhs = t.clone().and_then(f).and_then(g);
        let rhs = t.and_then(move |x| f(x).and_then(g));
        prop_assert_eq!(lhs.run(&s), rhs.run(&s));
    }

    // gets never mutates the state.
    #[test]
    fn gets_is_pure(s in arb_state(), k in 0u64..16) {
        let t: Transition<S, Option<u64>> = Transition::gets(move |st: &S| st.get(&k).copied());
        match t.run(&s) {
            Outcome::Ok(s2, _) => prop_assert_eq!(s2, s),
            other => prop_assert!(false, "unexpected outcome {:?}", other),
        }
    }

    // Undefined is absorbing on both sides of bind.
    #[test]
    fn undefined_absorbs(s in arb_state()) {
        let left: Transition<S, u64> =
            Transition::<S, u64>::undefined().and_then(Transition::ret);
        prop_assert_eq!(left.run(&s), Outcome::Undefined);
        let right: Transition<S, u64> =
            Transition::<S, u64>::ret(1).and_then(|_| Transition::undefined());
        prop_assert_eq!(right.run(&s), Outcome::Undefined);
    }

    // modify composes like function composition.
    #[test]
    fn modify_composes(s in arb_state(), a in 0u64..16, v1 in 0u64..100, v2 in 0u64..100) {
        let w = |a: u64, v: u64| -> Transition<S, ()> {
            Transition::modify(move |st: &S| {
                let mut st = st.clone();
                st.insert(a, v);
                st
            })
        };
        let seq = w(a, v1).and_then(move |()| w(a, v2));
        let (s2, ()) = seq.run(&s).unwrap();
        prop_assert_eq!(s2.get(&a).copied(), Some(v2));
    }
}
