//! Crash hunt: demonstrate that the checker has teeth by running every
//! deliberately broken variant in the repository and printing how each
//! one is caught — which exploration pass, which crash point, which
//! capability rule.
//!
//! Scenarios are enumerated from the workspace registry
//! ([`perennial_suite::all_mutant_scenarios`]); pass a name fragment to
//! filter, e.g. `cargo run --example crash_hunt -- repldisk`.

use perennial_checker::{CheckConfig, CheckReport, Pass};
use perennial_suite::all_mutant_scenarios;

fn show(name: &str, report: &CheckReport) {
    match &report.counterexample {
        Some(cx) => {
            println!(
                "  CAUGHT {name}\n         pass={} crash_points={:?}\n         {:?}",
                cx.pass, cx.crash_points, cx.outcome
            );
            if !cx.faults.is_empty() {
                println!("         faults: {}", cx.faults.describe());
            }
        }
        None => println!("  MISSED {name} — this should not happen"),
    }
}

fn main() {
    let filter = std::env::args().nth(1).unwrap_or_default();
    // Fault sweeps on: several registered mutants (skip-commit-flush,
    // transient-give-up, net-no-dedup) are reachable only through them.
    let cfg = CheckConfig::builder()
        .dfs_max_executions(300)
        .random_samples(10)
        .random_crash_samples(25)
        .without_passes([Pass::NestedCrash])
        .max_steps(200_000)
        .with_passes([Pass::DiskFault, Pass::TornWrite, Pass::NetFault])
        .build();

    let registry = all_mutant_scenarios();
    let hunted: Vec<_> = registry
        .iter()
        .filter(|s| s.name().contains(&filter))
        .collect();
    if hunted.is_empty() {
        eprintln!("no scenario name contains {filter:?}; registered names:");
        for n in registry.names() {
            eprintln!("  {n}");
        }
        std::process::exit(2);
    }
    println!(
        "Hunting {} of {} registered expected-fail scenarios ({} workers)…",
        hunted.len(),
        registry.len(),
        cfg.effective_workers()
    );
    let mut missed = 0usize;
    let mut last_system = String::new();
    for scenario in hunted {
        let system = scenario.name().split('/').next().unwrap_or("").to_string();
        if system != last_system {
            println!("\n[{system}]");
            last_system = system;
        }
        let report = scenario.run(&cfg);
        show(
            &format!("{} ({})", scenario.name(), scenario.description()),
            &report,
        );
        if report.passed() {
            missed += 1;
        }
    }

    println!("\nEvery scenario above must read CAUGHT; the matching assertions run");
    println!("in CI as the mutation tests (DESIGN.md §8).");
    if missed > 0 {
        eprintln!("{missed} mutant(s) escaped the checker");
        std::process::exit(1);
    }
}
