//! Crash hunt: demonstrate that the checker has teeth by running every
//! deliberately broken variant in the repository and printing how each
//! one is caught — which exploration pass, which crash point, which
//! capability rule.
//!
//! Run with: `cargo run --example crash_hunt`

use crash_patterns::group_commit::{GcHarness, GcMutant};
use crash_patterns::shadow::{ShadowHarness, ShadowMutant};
use crash_patterns::synced_log::{SlHarness, SlMutant};
use crash_patterns::txn_wal::{TxnHarness, TxnMutant};
use crash_patterns::wal::{WalHarness, WalMutant};
use mailboat::harness::{MbHarness, MbWorkload};
use mailboat::proof::MbMutant;
use perennial_checker::{check, CheckConfig, CheckReport};
use perennial_kv::{KvHarness, KvMutant, KvWorkload};
use repldisk::harness::{RdHarness, RdWorkload};
use repldisk::proof::RdMutant;

fn show(name: &str, report: CheckReport) {
    match report.counterexample {
        Some(cx) => println!(
            "  CAUGHT {name}\n         pass={} crash_points={:?}\n         {:?}",
            cx.pass, cx.crash_points, cx.outcome
        ),
        None => println!("  MISSED {name} — this should not happen"),
    }
}

fn main() {
    let cfg = CheckConfig {
        dfs_max_executions: 300,
        random_samples: 10,
        random_crash_samples: 25,
        nested_crash_sweep: false,
        max_steps: 200_000,
        ..CheckConfig::default()
    };

    println!("Replicated disk mutants:");
    for (name, mutant, workload) in [
        (
            "skip second disk write",
            RdMutant::SkipSecondWrite,
            RdWorkload::Failover,
        ),
        (
            "zeroing recovery (§1)",
            RdMutant::ZeroingRecovery,
            RdWorkload::SingleWrite,
        ),
        (
            "no helping token",
            RdMutant::SkipHelping,
            RdWorkload::SingleWrite,
        ),
        (
            "commit at first write",
            RdMutant::CommitEarly,
            RdWorkload::SingleWrite,
        ),
    ] {
        let h = RdHarness {
            mutant,
            workload,
            ..RdHarness::default()
        };
        show(name, check(&h, &cfg));
    }

    println!("\nShadow-copy mutants:");
    for (name, mutant) in [
        ("flip install pointer first", ShadowMutant::FlipFirst),
        ("update in place", ShadowMutant::InPlace),
    ] {
        let h = ShadowHarness {
            mutant,
            with_reader: false,
        };
        show(name, check(&h, &cfg));
    }

    println!("\nWrite-ahead-log mutants:");
    for (name, mutant) in [
        ("recovery skips committed txn", WalMutant::SkipRecoveryApply),
        ("header before log entries", WalMutant::HeaderFirst),
        ("no helping token", WalMutant::SkipHelping),
    ] {
        let h = WalHarness {
            mutant,
            with_reader: false,
        };
        show(name, check(&h, &cfg));
    }

    println!("\nGroup-commit mutants:");
    for (name, mutant) in [
        ("count block before entries", GcMutant::CountFirst),
        ("fake durability ack", GcMutant::FakeDurability),
    ] {
        let h = GcHarness { mutant };
        show(name, check(&h, &cfg));
    }

    println!("\nTransactional-WAL mutants:");
    for (name, mutant) in [
        ("no log at all", TxnMutant::NoLog),
        ("header before entries", TxnMutant::HeaderFirst),
        ("partial recovery apply", TxnMutant::PartialRecoveryApply),
    ] {
        let h = TxnHarness {
            mutant,
            with_reader: false,
        };
        show(name, check(&h, &cfg));
    }

    println!("\nSynced-log (deferred durability) mutants:");
    for (name, mutant) in [
        ("skip fsync", SlMutant::SkipFsync),
        ("skip dir sync", SlMutant::SkipDirSync),
    ] {
        show(name, check(&SlHarness { mutant }, &cfg));
    }

    println!("\nNode-KV mutants:");
    for (name, mutant, workload) in [
        (
            "in-place bucket update",
            KvMutant::InPlace,
            KvWorkload::SinglePut,
        ),
        (
            "flip pointer first",
            KvMutant::FlipFirst,
            KvWorkload::SinglePut,
        ),
        ("no bucket lock", KvMutant::NoLock, KvWorkload::SameBucket),
    ] {
        let h = KvHarness {
            mutant,
            workload,
            ..KvHarness::default()
        };
        show(name, check(&h, &cfg));
    }

    println!("\nMailboat mutants:");
    for (name, mutant, workload) in [
        (
            "deliver without spool",
            MbMutant::NoSpool,
            MbWorkload::DeliverVsPickup,
        ),
        (
            "commit at spool write",
            MbMutant::CommitAtSpool,
            MbWorkload::SingleDeliver,
        ),
        (
            "recovery skips spool cleanup",
            MbMutant::SkipRecoveryCleanup,
            MbWorkload::SingleDeliver,
        ),
        (
            "delete without pickup lock",
            MbMutant::DeleteWithoutLock,
            MbWorkload::DeliverVsPickup,
        ),
    ] {
        let h = MbHarness {
            mutant,
            workload,
            ..MbHarness::default()
        };
        show(name, check(&h, &cfg));
    }

    println!("\nEvery mutant above must read CAUGHT; the matching assertions run");
    println!("in CI as the mutation tests (DESIGN.md §8).");
}
