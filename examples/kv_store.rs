//! The node KV store (the §2 "Verdi node storage" system) under the
//! checker: cross-bucket parallelism, same-bucket contention, crash
//! sweeps, and a broken variant rejected.
//!
//! Run with: `cargo run --example kv_store`

use perennial_checker::{check, CheckConfig, Pass};
use perennial_kv::{KvHarness, KvMutant, KvWorkload};

fn main() {
    let config = CheckConfig::builder()
        .dfs_max_executions(400)
        .random_samples(15)
        .random_crash_samples(30)
        .without_passes([Pass::NestedCrash])
        .build();

    println!("Checking the crash-safe node KV store:\n");

    for (label, workload) in [
        ("cross-bucket ops ", KvWorkload::CrossBucket),
        ("same-bucket race ", KvWorkload::SameBucket),
        ("put/delete/get   ", KvWorkload::PutDeleteGet),
    ] {
        let h = KvHarness {
            workload,
            ..KvHarness::default()
        };
        let report = check(&h, &config);
        println!("{label}: {}", report.summary());
        assert!(report.passed(), "{:?}", report.counterexample);
    }

    // The in-place mutant loses an acknowledged put if a crash lands
    // between the commit and the write.
    let h = KvHarness {
        workload: KvWorkload::SinglePut,
        mutant: KvMutant::InPlace,
        ..KvHarness::default()
    };
    let report = check(&h, &config);
    let cx = report.counterexample.expect("in-place must fail");
    println!(
        "\nin-place mutant  : rejected in pass '{}' with crash at grant count(s) {:?}",
        cx.pass, cx.crash_points
    );
    println!("\nkv_store OK: per-bucket shadow copies + per-bucket locks verify;");
    println!("in-place updates do not.");
}
