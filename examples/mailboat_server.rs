//! Mailboat as a running mail server (§8): SMTP deliveries and POP3
//! pickups through the unverified protocol frontends, a crash with
//! recovery, and a multi-threaded throughput measurement — the §9.3
//! experiment in miniature.
//!
//! Run with: `cargo run --release --example mailboat_server`

use goose_rt::fs::{FileSys, NativeFs};
use goose_rt::runtime::NativeRt;
use mailboat::net::{LineClient, MailListener, Protocol};
use mailboat::server::{mail_dirs, MailServer, Mailboat};
use mailboat::smtp::{Pop3Session, SmtpSession};
use mailboat::workload::{run_workload, WorkloadConfig};
use std::sync::Arc;

fn main() {
    let users = 100u64;
    let dirs = mail_dirs(users);
    let dir_refs: Vec<&str> = dirs.iter().map(String::as_str).collect();
    let fs = NativeFs::new(&dir_refs);
    let server =
        Arc::new(Mailboat::init(fs.clone() as Arc<dyn FileSys>, NativeRt::new(), users).unwrap());

    // ---- SMTP delivery session. --------------------------------------
    println!("== SMTP session ==");
    let (mut smtp, greeting) = SmtpSession::new(Arc::clone(&server));
    println!("S: {greeting}");
    for line in [
        "HELO example.com",
        "MAIL FROM:<postmaster@example.com>",
        "RCPT TO:<user7@example.com>",
        "DATA",
        "Subject: verified mail",
        "",
        "Delivered atomically via spool + link.",
        ".",
        "QUIT",
    ] {
        let reply = smtp.handle_line(line);
        if !reply.is_empty() {
            println!("C: {line}\nS: {reply}");
        }
    }

    // ---- Crash and recovery. ------------------------------------------
    // Drop all descriptors (process crash); delivered mail is durable.
    fs.crash();
    server.recover();
    println!("\n== crashed and recovered (spool cleaned) ==");

    // ---- POP3 retrieval session. ---------------------------------------
    println!("\n== POP3 session ==");
    let (mut pop, greeting) = Pop3Session::new(Arc::clone(&server));
    println!("S: {greeting}");
    for line in ["USER user7", "LIST", "RETR 1", "DELE 1", "QUIT"] {
        let reply = pop.handle_line(line);
        println!("C: {line}\nS: {reply}");
    }

    // ---- The same protocols over real TCP sockets. ---------------------
    println!("\n== TCP round trip (SMTP listener on an ephemeral port) ==");
    let mut listener =
        MailListener::start(Arc::clone(&server), Protocol::Smtp).expect("bind listener");
    println!("listening on {}", listener.addr);
    let (mut client, greeting) = LineClient::connect(listener.addr).expect("connect");
    println!("S: {greeting}");
    for line in [
        "HELO tcp-client",
        "MAIL FROM:<net@example.com>",
        "RCPT TO:<user42@example.com>",
        "DATA",
    ] {
        let reply = client.roundtrip(line).expect("roundtrip");
        println!("C: {line}\nS: {reply}");
    }
    client.send("delivered over a real socket").expect("send");
    let reply = client.roundtrip(".").expect("finish DATA");
    println!("S: {reply}");
    let _ = client.roundtrip("QUIT");
    listener.shutdown();
    let got = server.pickup(42);
    assert_eq!(got.len(), 1);
    println!("user42 mailbox now holds {} message(s)", got.len());
    server.unlock(42);

    // ---- The §9.3 workload, closed loop. -------------------------------
    println!("\n== closed-loop workload (equal deliver / pickup mix) ==");
    for threads in [1usize, 2, 4] {
        let cfg = WorkloadConfig {
            users,
            total_requests: 20_000,
            msg_len: 256,
            seed: 1,
        };
        let r = run_workload(Arc::clone(&server), threads, &cfg);
        println!(
            "  {} thread(s): {:>9.0} requests/sec ({} requests in {:?})",
            threads,
            r.req_per_sec(),
            r.requests,
            r.elapsed
        );
    }
    println!("\n(for the full Figure 11 reproduction run:");
    println!("  cargo run -p perennial-bench --release --bin harness -- fig11)");
}
