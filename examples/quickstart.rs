//! Quickstart: verify a tiny crash-safe system end to end.
//!
//! Builds the ghost-instrumented replicated disk, explores schedules and
//! crash points with the checker, and prints the verification report —
//! the five-minute version of what this repository does.
//!
//! Run with: `cargo run --example quickstart`

use perennial_checker::prelude::*;
use repldisk::harness::{RdHarness, RdWorkload};
use repldisk::proof::RdMutant;

fn main() {
    println!("Perennial-rs quickstart: checking the replicated disk\n");

    // 1. The correct system: one writer, one reader, one background
    //    writer; every interleaving (bounded DFS), every crash point,
    //    crashes during recovery.
    let harness = RdHarness {
        workload: RdWorkload::Mixed,
        ..RdHarness::default()
    };
    let config = CheckConfig::builder()
        .dfs_max_executions(500)
        .random_samples(20)
        .random_crash_samples(40)
        .without_passes([Pass::NestedCrash])
        .build();
    let report = check(&harness, &config);
    println!("correct system : {}", report.summary());
    assert!(report.passed(), "the verified system must pass");

    // 2. A broken variant — the §1 "zero both disks" recovery — must be
    //    rejected, and the checker shows the failing crash point.
    let broken = RdHarness {
        workload: RdWorkload::SingleWrite,
        mutant: RdMutant::ZeroingRecovery,
        ..RdHarness::default()
    };
    let report = check(&broken, &config);
    println!("zeroing mutant : {}", report.summary());
    let cx = report
        .counterexample
        .expect("the zeroing recovery must be caught");
    println!(
        "  rejected in pass '{}' with crash at absolute grant count(s) {:?}:\n  {:?}",
        cx.pass, cx.crash_points, cx.outcome
    );
    println!("\nquickstart OK: the checker accepts the correct system and");
    println!("rejects the broken recovery.");
}
