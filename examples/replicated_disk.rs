//! The paper's running example (§1, Figures 1–6), driven interactively:
//! a replicated disk on two physical disks, a crash in the middle of a
//! write, recovery completing the write via helping, and failover after
//! a disk failure.
//!
//! Run with: `cargo run --example replicated_disk`

use goose_rt::runtime::NativeRt;
use perennial_checker::{check, CheckConfig};
use perennial_disk::two::{DiskId, NativeTwoDisks, TwoDisks};
use repldisk::harness::{RdHarness, RdWorkload};
use repldisk::ReplDisk;
use std::sync::Arc;

fn main() {
    // ---- Part 1: the plain library on the native substrate. ----------
    println!("[native] replicated disk over two in-memory disks");
    let disks = NativeTwoDisks::new(8, 4096);
    let rt = NativeRt::new();
    let rd = ReplDisk::new(&*rt, Arc::clone(&disks) as Arc<dyn TwoDisks>);

    rd.rd_write(3, &vec![0xAB; 4096]);
    assert_eq!(rd.rd_read(3)[0], 0xAB);
    println!("  wrote block 3, read it back");

    // Simulate the crash of Figure 6: disk 1 written, disk 2 not.
    disks.disk_write(DiskId::D1, 5, &vec![0xCD; 4096]);
    println!("  simulated crash mid-write: disks differ at block 5");
    rd.rd_recover();
    assert_eq!(rd.rd_read(5)[0], 0xCD);
    println!("  rd_recover copied disk1 -> disk2; the write is complete");

    disks.fail(DiskId::D1);
    assert_eq!(rd.rd_read(3)[0], 0xAB);
    println!("  disk 1 failed; reads fail over to disk 2\n");

    // ---- Part 2: the verified variant under the checker. -------------
    println!("[model] sweeping a crash through every step of rd_write");
    let harness = RdHarness {
        workload: RdWorkload::SingleWrite,
        ..RdHarness::default()
    };
    let report = check(
        &harness,
        &CheckConfig::builder()
            .dfs_max_executions(100)
            .random_samples(5)
            .random_crash_samples(10)
            .build(),
    );
    println!("  {}", report.summary());
    assert!(report.passed());
    assert!(report.helped_ops > 0);
    println!(
        "  {} crashed executions required recovery helping (Figure 6's\n  \
         'recovery completes the crashed write' -- checked, not assumed)",
        report.helped_ops
    );
}
