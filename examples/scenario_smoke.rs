//! Scenario smoke run: enumerate every registered expected-pass scenario
//! and check it under the quick configuration. This is the CI smoke
//! gate — fast, deterministic, and covering every system in the
//! workspace through the unified [`perennial_checker::ScenarioSet`] API.
//!
//! Run with: `cargo run --release --example scenario_smoke`
//! (optionally pass a name fragment to filter, e.g. `-- kv/`, and/or
//! `--faults` to also run the fault-injection sweeps: torn writes,
//! transient I/O errors, disk failures, and net faults).

use perennial_checker::{verdict_line, CheckConfig};
use perennial_suite::all_scenarios;

fn main() {
    let mut filter = String::new();
    let mut faults = false;
    for arg in std::env::args().skip(1) {
        if arg == "--faults" {
            faults = true;
        } else {
            filter = arg;
        }
    }
    let cfg = CheckConfig::builder()
        .seed(0)
        .dfs_max_executions(200)
        .random_samples(10)
        .random_crash_samples(20)
        .nested_crash_sweep(false)
        .fault_sweeps(faults)
        .build();

    let registry = all_scenarios();
    println!(
        "Smoke-checking {} scenarios ({} workers{})…",
        registry.len(),
        cfg.effective_workers(),
        if faults { ", fault sweeps on" } else { "" }
    );

    let mut failed = 0usize;
    for scenario in &registry {
        if !scenario.name().contains(&filter) {
            continue;
        }
        let report = scenario.run(&cfg);
        println!("  {}", verdict_line(&report));
        if !report.passed() {
            failed += 1;
            if let Some(text) = perennial_checker::render_failure(&report) {
                eprintln!("{text}");
            }
        }
    }

    if failed > 0 {
        eprintln!("{failed} scenario(s) failed");
        std::process::exit(1);
    }
    println!("All scenarios passed.");
}
