//! Scenario smoke run: enumerate every registered expected-pass scenario
//! and check it under the quick configuration. This is the CI smoke
//! gate — fast, deterministic, and covering every system in the
//! workspace through the unified [`perennial_checker::ScenarioSet`] API.
//!
//! Run with: `cargo run --release --example scenario_smoke`
//! (optionally pass a name fragment to filter, e.g. `-- kv/`, and/or
//! `--faults` to also run the fault-injection sweeps: torn writes,
//! transient I/O errors, disk failures, and net faults; `--strategy
//! exhaustive|dpor|coverage` picks the schedule-phase exploration
//! strategy, DESIGN.md §12). Observability flags: `--telemetry PATH`
//! appends every scenario's JSONL event stream to one file (the CI
//! artifact), `--summary` prints the full per-scenario metrics block
//! instead of just the verdict line, and `--trace-out DIR` writes a
//! Chrome trace-event JSON (Perfetto-loadable, DESIGN.md §14) for each
//! failing scenario's counterexample.
//!
//! Campaign robustness flags (DESIGN.md §13): `--shard I/N` runs only
//! this process's deterministic slice of every scenario's job space;
//! `--resume PATH` replays completed executions from a previous run's
//! telemetry stream (pass the same file to `--telemetry` to also
//! extend it, making the run resumable in turn).

use perennial_bench::args::{apply_strategy, flag, parse_args, value};
use perennial_checker::{
    chrome_trace_json, parse_shard, render_summary, verdict_line, CheckConfig, Pass, TelemetrySink,
};
use perennial_suite::all_scenarios;

fn main() {
    let spec = [
        flag("--faults"),
        flag("--summary"),
        value("--telemetry"),
        value("--strategy"),
        value("--shard"),
        value("--resume"),
        value("--trace-out"),
    ];
    let args = parse_args(std::env::args().skip(1), &spec).unwrap_or_else(|e| panic!("{e}"));
    let filter = args.positionals().first().cloned().unwrap_or_default();
    let faults = args.flag("--faults");
    let summary = args.flag("--summary");
    let telemetry_path = args.value("--telemetry");
    let shard = args
        .value("--shard")
        .map(|s| parse_shard(s).unwrap_or_else(|e| panic!("{e}")));
    let resume = args.value("--resume");
    let trace_out = args.value("--trace-out").map(|d| {
        let dir = std::path::PathBuf::from(d);
        std::fs::create_dir_all(&dir).unwrap_or_else(|e| panic!("cannot create {dir:?}: {e}"));
        dir
    });

    let mut builder = CheckConfig::builder()
        .seed(0)
        .dfs_max_executions(200)
        .random_samples(10)
        .random_crash_samples(20)
        .without_passes([Pass::NestedCrash])
        .shard_opt(shard);
    if let Some(path) = resume {
        builder = builder.resume_from(path);
    }
    builder = apply_strategy(builder, args.value("--strategy").unwrap_or("exhaustive"))
        .unwrap_or_else(|e| panic!("{e}"));
    if faults {
        builder = builder.with_passes([Pass::DiskFault, Pass::TornWrite, Pass::NetFault]);
    }
    if let Some(path) = telemetry_path {
        // One shared sink: every scenario appends to the same JSONL
        // stream, distinguished by the `scenario` field on each record.
        // When resuming from this same file, append instead of
        // truncating — the existing records are the WAL being replayed.
        let sink = if resume == Some(path) {
            TelemetrySink::append_file(path)
        } else {
            TelemetrySink::to_file(path)
        }
        .unwrap_or_else(|e| panic!("cannot open telemetry file {path}: {e}"));
        builder = builder.telemetry(sink);
    }
    let cfg = builder.build();

    let registry = all_scenarios();
    println!(
        "Smoke-checking {} scenarios ({} workers{})…",
        registry.len(),
        cfg.effective_workers(),
        if faults { ", fault sweeps on" } else { "" }
    );

    let mut failed = 0usize;
    let mut replayed = 0u64;
    for scenario in &registry {
        if !scenario.name().contains(&filter) {
            continue;
        }
        let report = scenario.run(&cfg);
        replayed += report.replayed;
        if summary {
            println!("{}", render_summary(&report));
        } else {
            println!("  {}", verdict_line(&report));
        }
        if !report.passed() {
            failed += 1;
            if let Some(text) = perennial_checker::render_failure(&report) {
                eprintln!("{text}");
            }
            if let (Some(dir), Some(timeline)) = (
                &trace_out,
                report
                    .counterexample
                    .as_ref()
                    .and_then(|cx| cx.timeline.as_ref()),
            ) {
                let path = dir.join(format!("{}.trace.json", scenario.name().replace('/', "__")));
                let json = chrome_trace_json(timeline, scenario.name());
                std::fs::write(&path, serde_json::to_string_pretty(&json).unwrap())
                    .unwrap_or_else(|e| panic!("cannot write {path:?}: {e}"));
                println!("  (chrome trace written to {})", path.display());
            }
        }
    }

    if replayed > 0 {
        println!("({replayed} executions replayed from the resume WAL)");
    }
    if failed > 0 {
        eprintln!("{failed} scenario(s) failed");
        std::process::exit(1);
    }
    println!("All scenarios passed.");
}
