//! The write-ahead-log pattern (§9.1) under the checker: atomic pair
//! updates, a crash swept through every step — including between the
//! log-header write and the apply, where recovery must *help* the
//! crashed transaction to completion — and the group-commit variant
//! whose spec explicitly permits losing buffered transactions.
//!
//! Run with: `cargo run --example wal_pair`

use crash_patterns::group_commit::GcHarness;
use crash_patterns::shadow::ShadowHarness;
use crash_patterns::wal::WalHarness;
use perennial_checker::{check, CheckConfig, Pass};

fn main() {
    let config = CheckConfig::builder()
        .dfs_max_executions(300)
        .random_samples(10)
        .random_crash_samples(20)
        .without_passes([Pass::NestedCrash])
        .build();

    println!("Checking the three §9.1 crash-safety patterns:\n");

    let report = check(&ShadowHarness::default(), &config);
    println!("shadow copy  : {}", report.summary());
    assert!(report.passed());

    let report = check(&WalHarness::default(), &config);
    println!("write-ahead  : {}", report.summary());
    assert!(report.passed());
    assert!(
        report.helped_ops > 0,
        "the crash sweep must hit the committed-but-unapplied window"
    );
    println!(
        "               {} executions needed recovery helping (a committed,\n               \
         unapplied transaction was finished by recovery)",
        report.helped_ops
    );

    let report = check(&GcHarness::default(), &config);
    println!("group commit : {}", report.summary());
    assert!(report.passed());
    println!(
        "               buffered transactions may be lost on crash — the spec's\n               \
         crash transition says exactly which (the un-flushed suffix)"
    );
}
