//! Offline shim for the `criterion` crate: same macro/builder surface,
//! simple mean-of-N wall-clock measurement instead of statistical
//! sampling. Good enough to compare configurations (the workspace's
//! benches report relative numbers, not publishable absolutes).

use std::time::{Duration, Instant};

/// Opaque black box: defeats trivial constant folding.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How per-iteration setup output is batched (accepted, ignored).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// The measurement driver handed to `bench_function` closures.
pub struct Bencher {
    iters: u64,
    /// Total measured time, reported back to [`Criterion`].
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` with un-timed per-iteration setup.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }
}

/// Benchmark runner configuration + execution.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs `f`, calibrating an iteration count from the warm-up so the
    /// measurement roughly fills `measurement_time`, and prints a
    /// criterion-like summary line.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        // Warm-up + calibration: time a single iteration.
        let mut probe = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            f(&mut probe);
            warm_iters += 1;
            if warm_iters >= 1000 {
                break;
            }
        }
        let per_iter = if warm_iters > 0 {
            (warm_start.elapsed() / warm_iters as u32).max(Duration::from_nanos(1))
        } else {
            Duration::from_micros(1)
        };
        let budget_per_sample = self.measurement_time / self.sample_size as u32;
        let iters =
            (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

        let mut best = Duration::MAX;
        let mut worst = Duration::ZERO;
        let mut total = Duration::ZERO;
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            let per = if b.elapsed.is_zero() {
                Duration::from_nanos(1)
            } else {
                b.elapsed / iters as u32
            };
            best = best.min(per);
            worst = worst.max(per);
            total += per;
        }
        let mean = total / self.sample_size as u32;
        println!(
            "{name:<40} time: [{} {} {}]  ({} iters x {} samples)",
            fmt_dur(best),
            fmt_dur(mean),
            fmt_dur(worst),
            iters,
            self.sample_size
        );
        self
    }

    /// Final reporting hook (no-op in the shim).
    pub fn final_summary(&mut self) {}
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Declares a benchmark group, mirroring criterion's two accepted forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5));
        let mut count = 0u64;
        c.bench_function("shim/smoke", |b| {
            b.iter(|| {
                count += 1;
                black_box(count)
            })
        });
        assert!(count > 0);
    }

    #[test]
    fn iter_batched_runs_setup_per_iteration() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(2));
        let mut setups = 0u64;
        let mut runs = 0u64;
        c.bench_function("shim/batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    setups
                },
                |v| {
                    runs += 1;
                    black_box(v)
                },
                BatchSize::SmallInput,
            )
        });
        assert!(setups > 0);
        assert_eq!(setups, runs);
    }
}
