//! Offline shim for the `parking_lot` crate.
//!
//! This container builds without a crates.io mirror, so the workspace
//! vendors the *API subset it actually uses* (`Mutex`, `MutexGuard`,
//! `Condvar`, `RwLock`) as thin wrappers over `std::sync`. Semantics
//! match parking_lot where the workspace relies on them:
//!
//! - locks are not poisoned (a panicking holder does not wedge the
//!   lock — the model runtime unwinds virtual threads on purpose);
//! - `lock()`/`read()`/`write()` return guards directly, not `Result`s;
//! - `Condvar::wait` takes `&mut MutexGuard`.

use std::sync;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// A mutual-exclusion primitive (non-poisoning `lock()` API).
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so Condvar::wait can temporarily take the std guard out
    // without dropping the wrapper.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { inner: Some(guard) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

/// Condition variable with parking_lot's `wait(&mut guard)` shape.
pub struct Condvar {
    inner: sync::Condvar,
}

/// Result of a timed wait.
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard already taken");
        let inner = match self.inner.wait(inner) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(inner);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard already taken");
        let (inner, res) = match self.inner.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(inner);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

/// Reader-writer lock (non-poisoning `read()`/`write()` API).
pub struct RwLock<T: ?Sized> {
    // Tracks whether a writer is active so Debug can avoid blocking.
    write_held: AtomicBool,
    inner: sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    held: &'a AtomicBool,
    inner: Option<sync::RwLockWriteGuard<'a, T>>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            write_held: AtomicBool::new(false),
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let guard = match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockReadGuard { inner: guard }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let guard = match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        self.write_held.store(true, Ordering::Relaxed);
        RwLockWriteGuard {
            held: &self.write_held,
            inner: Some(guard),
        }
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { inner: g }),
            Err(sync::TryLockError::Poisoned(p)) => Some(RwLockReadGuard {
                inner: p.into_inner(),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            None => f.write_str("RwLock { <locked> }"),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.inner = None;
        self.held.store(false, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn mutex_survives_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("holder dies");
        })
        .join();
        // Non-poisoning: still usable.
        *m.lock() = 7;
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn condvar_wakes() {
        use std::sync::Arc;
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
