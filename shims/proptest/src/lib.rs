//! Offline shim for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use — integer
//! range strategies, tuples, `prop_map`, `Just`, `prop_oneof!`,
//! `collection::{vec, btree_map}`, `any::<u8>()`, a tiny `[x-y]{m,n}`
//! string pattern, and the `proptest!`/`prop_assert*` macros — with
//! deterministic random generation and **no shrinking**: a failing case
//! panics with the generated inputs' debug output instead of a minimal
//! counterexample.

pub mod strategy {
    use super::test_runner::TestRng;

    /// A value generator. The workspace names this trait in `impl
    /// Strategy<Value = T>` return positions and calls the `prop_map`
    /// combinator on it.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }

        fn prop_filter<F>(self, _whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { base: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// Type-erased strategy (what `prop_oneof!` arms become).
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// `prop_map` combinator.
    pub struct Map<S, F> {
        pub(crate) base: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    /// `prop_filter` combinator (rejection sampling, bounded retries).
    pub struct Filter<S, F> {
        pub(crate) base: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.base.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 1000 candidates in a row");
        }
    }

    /// Constant strategy.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<V> {
        pub(crate) options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = (rng.next() % self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let lo = self.start as i128;
                    let hi = self.end as i128;
                    assert!(lo < hi, "empty range strategy");
                    let span = (hi - lo) as u128;
                    (lo + (rng.next() as u128 % span) as i128) as $t
                }
            }

            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let lo = *self.start() as i128;
                    let hi = *self.end() as i128;
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u128 + 1;
                    (lo + (rng.next() as u128 % span) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
    }

    /// A tiny `[x-y]{m,n}`-shaped string pattern strategy: enough for
    /// the workloads' message generators. Unrecognized patterns fall
    /// back to 1–8 lowercase letters.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (lo_ch, hi_ch, min_len, max_len) =
                parse_class_pattern(self).unwrap_or(('a', 'z', 1, 8));
            let span = (max_len - min_len + 1) as u64;
            let len = min_len + (rng.next() % span) as usize;
            let chars = (hi_ch as u32 - lo_ch as u32 + 1) as u64;
            (0..len)
                .map(|_| {
                    char::from_u32(lo_ch as u32 + (rng.next() % chars) as u32).expect("char range")
                })
                .collect()
        }
    }

    fn parse_class_pattern(pat: &str) -> Option<(char, char, usize, usize)> {
        // "[a-z]{1,6}"
        let rest = pat.strip_prefix('[')?;
        let (class, rest) = rest.split_once(']')?;
        let mut chars = class.chars();
        let lo = chars.next()?;
        if chars.next()? != '-' {
            return None;
        }
        let hi = chars.next()?;
        let counts = rest.strip_prefix('{')?.strip_suffix('}')?;
        let (m, n) = counts.split_once(',')?;
        Some((lo, hi, m.trim().parse().ok()?, n.trim().parse().ok()?))
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Types with a canonical strategy (`any::<T>()`).
    pub trait Arbitrary {
        type Strategy: Strategy<Value = Self>;
        fn arbitrary() -> Self::Strategy;
    }

    /// Full-domain integer strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyInt<T>(std::marker::PhantomData<T>);

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Strategy for AnyInt<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next() as $t
                }
            }

            impl Arbitrary for $t {
                type Strategy = AnyInt<$t>;
                fn arbitrary() -> Self::Strategy {
                    AnyInt(std::marker::PhantomData)
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Coin-flip strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyBool;
        fn arbitrary() -> Self::Strategy {
            AnyBool
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::collections::BTreeMap;
    use std::ops::Range;

    /// `collection::vec(element, size_range)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + (rng.next() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `collection::btree_map(key, value, size_range)`.
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: Range<usize>,
    ) -> BTreeMapStrategy<K, V> {
        BTreeMapStrategy { key, value, size }
    }

    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: Range<usize>,
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + (rng.next() % span) as usize;
            (0..len)
                .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                .collect()
        }
    }
}

pub mod test_runner {
    /// Deterministic splitmix64 stream used by all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from a test's module path + name so every test gets a
        /// stable, distinct stream (reruns are reproducible).
        pub fn deterministic(label: &str) -> Self {
            let mut state = 0xcbf2_9ce4_8422_2325u64;
            for b in label.bytes() {
                state ^= b as u64;
                state = state.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state }
        }

        #[allow(clippy::should_implement_trait)]
        pub fn next(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    /// Failure payload produced by `prop_assert*` (a rendered message).
    pub type TestCaseError = String;

    /// Per-`proptest!` block configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; the shim trades a little
            // coverage for CI time.
            ProptestConfig { cases: 64 }
        }
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...)` body
/// runs `cases` times over generated inputs. No shrinking.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $cfg; $($rest)*);
    };
    (@impl $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for case in 0..cfg.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(message) = outcome {
                        panic!(
                            "proptest case {case} failed: {message}\n\
                             (proptest shim: rerun reproduces this case; no shrinking)",
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "msg {}", args)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// `prop_assert_eq!(a, b)` with optional message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            a,
            b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)+);
    }};
}

/// `prop_assume!(cond)`: skip the case when the precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

/// `prop_oneof![s1, s2, ...]`: uniform choice between the arms.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strat) ),+
        ])
    };
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic("t1");
        let s = (0u64..10, 5usize..6);
        for _ in 0..100 {
            let (a, b) = s.generate(&mut rng);
            assert!(a < 10);
            assert_eq!(b, 5);
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let mut rng = crate::test_runner::TestRng::deterministic("t2");
        let s = prop_oneof![Just(1u8), Just(2u8), (5u8..8).prop_map(|v| v)];
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            seen.insert(s.generate(&mut rng));
        }
        assert!(seen.contains(&1) && seen.contains(&2) && seen.iter().any(|&v| v >= 5));
    }

    #[test]
    fn string_pattern_roughly_honored() {
        let mut rng = crate::test_runner::TestRng::deterministic("t3");
        let s = "[a-z]{1,6}";
        for _ in 0..50 {
            let v = crate::strategy::Strategy::generate(&s, &mut rng);
            assert!((1..=6).contains(&v.len()), "bad len: {v:?}");
            assert!(v.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn collections_respect_size() {
        let mut rng = crate::test_runner::TestRng::deterministic("t4");
        let s = crate::collection::vec(0u8..10, 2..5);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
        let m = crate::collection::btree_map(0u64..16, 0u64..100, 0..8);
        for _ in 0..50 {
            let v = m.generate(&mut rng);
            assert!(v.len() < 8);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn the_macro_itself_works(a in 0u64..100, b in 0u64..100) {
            prop_assume!(a != 99);
            prop_assert!(a < 100);
            prop_assert_eq!(a + b, b + a);
        }
    }
}
