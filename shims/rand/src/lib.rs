//! Offline shim for the `rand` crate: a splitmix64/xoshiro-style PRNG
//! behind the `RngCore`/`SeedableRng`/`Rng` trait names the workspace
//! uses. Not cryptographic; deterministic for a given seed, which is all
//! the model runtime and workload generators need.

use std::ops::Range;

/// Core RNG interface (the subset of `rand::RngCore` used here).
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// Seedable construction (the subset of `rand::SeedableRng` used here).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Convenience methods over any [`RngCore`] (the subset of `rand::Rng`
/// used here).
pub trait Rng: RngCore {
    /// Uniform draw from `range` (start inclusive, end exclusive).
    fn gen_range(&mut self, range: Range<u64>) -> u64 {
        let span = range.end.checked_sub(range.start).expect("empty range");
        assert!(span > 0, "gen_range on an empty range");
        // Modulo bias is irrelevant for workload generation.
        range.start + self.next_u64() % span
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Deterministic PRNG (stands in for `rand::rngs::StdRng`).
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // One warm-up scramble so seed 0 doesn't start at state 0.
        let mut state = seed;
        let _ = splitmix64(&mut state);
        StdRng { state }
    }
}

pub mod rngs {
    pub use super::StdRng;

    /// Per-call entropy-seeded RNG (stands in for `rand::rngs::ThreadRng`).
    #[derive(Debug, Clone)]
    pub struct ThreadRng {
        pub(crate) inner: super::StdRng,
    }

    impl super::RngCore for ThreadRng {
        fn next_u32(&mut self) -> u32 {
            self.inner.next_u32()
        }

        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            self.inner.fill_bytes(dest)
        }
    }
}

/// An OS-entropy-seeded RNG handle (stands in for `rand::thread_rng`).
pub fn thread_rng() -> rngs::ThreadRng {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0xdead_beef);
    let tid = std::thread::current().id();
    let mut h = std::collections::hash_map::DefaultHasher::new();
    use std::hash::{Hash, Hasher};
    tid.hash(&mut h);
    rngs::ThreadRng {
        inner: StdRng::seed_from_u64(nanos ^ h.finish()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(3..9);
            assert!((3..9).contains(&v));
        }
    }

    #[test]
    fn gen_bool_mixes() {
        let mut r = StdRng::seed_from_u64(1);
        let trues = (0..1000).filter(|_| r.gen_bool(0.5)).count();
        assert!((300..700).contains(&trues), "suspicious bias: {trues}");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 11];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
