//! Offline shim for the `serde_json` crate: a JSON value tree, the
//! `json!` macro over flat/nested objects, and pretty printing. No
//! parsing, no serde integration — the workspace only *emits* JSON
//! (the experiment harness's `--json` record).

use std::collections::BTreeMap;
use std::fmt;

/// JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// All numbers carry an f64; integers print without a fraction.
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

/// Object map (sorted keys — deterministic output).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: BTreeMap<String, Value>,
}

impl Map {
    pub fn new() -> Self {
        Map::default()
    }

    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        self.entries.insert(key, value)
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.get(key)
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter()
    }
}

/// Conversion into a [`Value`] by reference (what `json!` leaves call).
pub trait ToJson {
    fn to_json(&self) -> Value;
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Value {
        Value::String((*self).to_string())
    }
}

macro_rules! tojson_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
    )*};
}
tojson_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for &T {
    fn to_json(&self) -> Value {
        (*self).to_json()
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

/// Converts any [`ToJson`] into a [`Value`] (shim analog of
/// `serde_json::to_value`, but infallible).
pub fn to_value<T: ToJson + ?Sized>(v: &T) -> Value {
    v.to_json()
}

/// Build a [`Value`] with JSON-ish syntax. Supports `null`, object
/// literals with string-literal keys, array literals, nesting, and
/// arbitrary Rust expressions (converted via [`ToJson`]) in value
/// position.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($body:tt)* }) => {{
        #[allow(unused_mut)]
        let mut m = $crate::Map::new();
        $crate::json!(@object m $($body)*);
        $crate::Value::Object(m)
    }};
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$elem) ),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };

    // -- object muncher: `"key": value, ...` with nested {}/[]/null ----
    (@object $m:ident) => {};
    (@object $m:ident $key:literal : null $(, $($rest:tt)*)?) => {
        $m.insert($key.to_string(), $crate::Value::Null);
        $crate::json!(@object $m $($($rest)*)?);
    };
    (@object $m:ident $key:literal : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $m.insert($key.to_string(), $crate::json!({ $($inner)* }));
        $crate::json!(@object $m $($($rest)*)?);
    };
    (@object $m:ident $key:literal : [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $m.insert($key.to_string(), $crate::json!([ $($inner)* ]));
        $crate::json!(@object $m $($($rest)*)?);
    };
    (@object $m:ident $key:literal : $val:expr , $($rest:tt)*) => {
        $m.insert($key.to_string(), $crate::to_value(&$val));
        $crate::json!(@object $m $($rest)*);
    };
    (@object $m:ident $key:literal : $val:expr) => {
        $m.insert($key.to_string(), $crate::to_value(&$val));
    };
}

/// Serialization error (never actually produced; kept for signature
/// compatibility).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("serde_json shim error")
    }
}

impl std::error::Error for Error {}

fn escape(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(v: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => {
            if n.fract() == 0.0 && n.abs() < 9e15 {
                out.push_str(&format!("{}", *n as i64));
            } else {
                out.push_str(&format!("{n}"));
            }
        }
        Value::String(s) => escape(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad_in);
                write_value(item, indent + 1, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            let n = map.len();
            for (i, (k, val)) in map.iter().enumerate() {
                out.push_str(&pad_in);
                escape(k, out);
                out.push_str(": ");
                write_value(val, indent + 1, out);
                if i + 1 < n {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push('}');
        }
    }
}

/// Pretty-prints a value as indented JSON.
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_json(), 0, &mut out);
    Ok(out)
}

/// Compact printing.
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> Result<String, Error> {
    let pretty = to_string_pretty(value)?;
    // Compact enough for a shim: strip the indentation newlines.
    Ok(pretty
        .lines()
        .map(str::trim_start)
        .collect::<Vec<_>>()
        .join(""))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_objects_and_arrays() {
        let name = String::from("demo");
        let v = json!({
            "name": name,
            "count": 3usize,
            "ok": true,
            "missing": (None::<u64>),
            "nested": { "xs": [1, 2, 3] },
        });
        match &v {
            Value::Object(m) => {
                assert_eq!(m.get("count"), Some(&Value::Number(3.0)));
                assert_eq!(m.get("missing"), Some(&Value::Null));
            }
            other => panic!("expected object, got {other:?}"),
        }
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains("\"name\": \"demo\""));
        assert!(text.contains("\"xs\""));
    }

    #[test]
    fn json_macro_takes_fields_by_reference() {
        struct Row {
            name: String,
        }
        let r = &Row { name: "x".into() };
        // Must not move out of `r.name`.
        let v = json!({ "n": r.name });
        assert_eq!(
            v,
            Value::Object({
                let mut m = Map::new();
                m.insert("n".into(), Value::String("x".into()));
                m
            })
        );
        assert_eq!(r.name, "x");
    }

    #[test]
    fn escaping() {
        let v = json!({ "s": "a\"b\nc" });
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains("a\\\"b\\nc"));
    }
}
