//! Offline shim for the `serde_json` crate: a JSON value tree, the
//! `json!` macro over flat/nested objects, pretty printing, and a
//! minimal [`from_str`] parser (always targeting [`Value`]). No serde
//! derive integration — the workspace emits JSON records (the experiment
//! harness's `--json`, the checker's telemetry JSONL) and parses them
//! back only for validation and field-stripping in tests.

use std::collections::BTreeMap;
use std::fmt;

/// JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// All numbers carry an f64; integers print without a fraction.
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

/// Object map (sorted keys — deterministic output).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: BTreeMap<String, Value>,
}

impl Map {
    pub fn new() -> Self {
        Map::default()
    }

    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        self.entries.insert(key, value)
    }

    pub fn remove(&mut self, key: &str) -> Option<Value> {
        self.entries.remove(key)
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.get(key)
    }

    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.entries.get_mut(key)
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter()
    }
}

/// Conversion into a [`Value`] by reference (what `json!` leaves call).
pub trait ToJson {
    fn to_json(&self) -> Value;
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Value {
        Value::String((*self).to_string())
    }
}

macro_rules! tojson_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
    )*};
}
tojson_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for &T {
    fn to_json(&self) -> Value {
        (*self).to_json()
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

/// Converts any [`ToJson`] into a [`Value`] (shim analog of
/// `serde_json::to_value`, but infallible).
pub fn to_value<T: ToJson + ?Sized>(v: &T) -> Value {
    v.to_json()
}

/// Build a [`Value`] with JSON-ish syntax. Supports `null`, object
/// literals with string-literal keys, array literals, nesting, and
/// arbitrary Rust expressions (converted via [`ToJson`]) in value
/// position.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($body:tt)* }) => {{
        #[allow(unused_mut)]
        let mut m = $crate::Map::new();
        $crate::json!(@object m $($body)*);
        $crate::Value::Object(m)
    }};
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$elem) ),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };

    // -- object muncher: `"key": value, ...` with nested {}/[]/null ----
    (@object $m:ident) => {};
    (@object $m:ident $key:literal : null $(, $($rest:tt)*)?) => {
        $m.insert($key.to_string(), $crate::Value::Null);
        $crate::json!(@object $m $($($rest)*)?);
    };
    (@object $m:ident $key:literal : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $m.insert($key.to_string(), $crate::json!({ $($inner)* }));
        $crate::json!(@object $m $($($rest)*)?);
    };
    (@object $m:ident $key:literal : [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $m.insert($key.to_string(), $crate::json!([ $($inner)* ]));
        $crate::json!(@object $m $($($rest)*)?);
    };
    (@object $m:ident $key:literal : $val:expr , $($rest:tt)*) => {
        $m.insert($key.to_string(), $crate::to_value(&$val));
        $crate::json!(@object $m $($rest)*);
    };
    (@object $m:ident $key:literal : $val:expr) => {
        $m.insert($key.to_string(), $crate::to_value(&$val));
    };
}

/// Serialization/deserialization error. Serialization never produces
/// one; [`from_str`] reports the byte offset and what went wrong.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

fn escape(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(v: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => {
            if n.fract() == 0.0 && n.abs() < 9e15 {
                out.push_str(&format!("{}", *n as i64));
            } else {
                out.push_str(&format!("{n}"));
            }
        }
        Value::String(s) => escape(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad_in);
                write_value(item, indent + 1, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            let n = map.len();
            for (i, (k, val)) in map.iter().enumerate() {
                out.push_str(&pad_in);
                escape(k, out);
                out.push_str(": ");
                write_value(val, indent + 1, out);
                if i + 1 < n {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push('}');
        }
    }
}

/// Pretty-prints a value as indented JSON.
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_json(), 0, &mut out);
    Ok(out)
}

/// Parses a JSON document into a [`Value`] (the shim analog of
/// `serde_json::from_str::<Value>`). Numbers parse as f64; duplicate
/// object keys keep the last occurrence, matching the map's semantics.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn err(&self, what: &str) -> Error {
        Error::new(format!("{what} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn lit(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.lit("null", Value::Null),
            Some(b't') => self.lit("true", Value::Bool(true)),
            Some(b'f') => self.lit("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{', "expected '{'")?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':' after object key")?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(e) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Lone surrogates degrade to the replacement
                            // character — good enough for a validator.
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                _ if b < 0x20 => return Err(self.err("raw control character in string")),
                _ => {
                    // Re-decode the UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let len = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let end = (start + len).min(self.bytes.len());
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error::new(format!("invalid number at byte {start}")))
    }
}

/// Compact printing.
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> Result<String, Error> {
    let pretty = to_string_pretty(value)?;
    // Compact enough for a shim: strip the indentation newlines.
    Ok(pretty
        .lines()
        .map(str::trim_start)
        .collect::<Vec<_>>()
        .join(""))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_str_round_trips_compact_output() {
        let v = json!({
            "s": "a \"quoted\"\nline\twith \\ unicode ✓",
            "n": 42u64,
            "f": 1.5f64,
            "neg": (-7i64),
            "b": true,
            "z": null,
            "arr": [1, 2, 3],
            "nested": { "empty_obj": {}, "empty_arr": [] },
        });
        let text = to_string(&v).unwrap();
        let back = from_str(&text).expect("round trip parses");
        assert_eq!(back, v);
        // Pretty output parses to the same tree too.
        assert_eq!(from_str(&to_string_pretty(&v).unwrap()).unwrap(), v);
    }

    #[test]
    fn from_str_accepts_escapes_and_rejects_garbage() {
        assert_eq!(
            from_str(r#""\u0041\u00e9""#).unwrap(),
            Value::String("Aé".to_string())
        );
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "1.2.3",
            "{\"a\":1} x",
            "\"\\q\"",
        ] {
            assert!(from_str(bad).is_err(), "{bad:?} should fail to parse");
        }
    }

    #[test]
    fn json_macro_objects_and_arrays() {
        let name = String::from("demo");
        let v = json!({
            "name": name,
            "count": 3usize,
            "ok": true,
            "missing": (None::<u64>),
            "nested": { "xs": [1, 2, 3] },
        });
        match &v {
            Value::Object(m) => {
                assert_eq!(m.get("count"), Some(&Value::Number(3.0)));
                assert_eq!(m.get("missing"), Some(&Value::Null));
            }
            other => panic!("expected object, got {other:?}"),
        }
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains("\"name\": \"demo\""));
        assert!(text.contains("\"xs\""));
    }

    #[test]
    fn json_macro_takes_fields_by_reference() {
        struct Row {
            name: String,
        }
        let r = &Row { name: "x".into() };
        // Must not move out of `r.name`.
        let v = json!({ "n": r.name });
        assert_eq!(
            v,
            Value::Object({
                let mut m = Map::new();
                m.insert("n".into(), Value::String("x".into()));
                m
            })
        );
        assert_eq!(r.name, "x");
    }

    #[test]
    fn escaping() {
        let v = json!({ "s": "a\"b\nc" });
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains("a\\\"b\\nc"));
    }
}
