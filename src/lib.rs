//! The Perennial reproduction workspace facade.
//!
//! This crate exists to host the workspace-level `examples/` and
//! `tests/`; the substance lives in the member crates:
//!
//! - [`perennial_spec`] — the transition-system specification DSL;
//! - [`perennial`] — the ghost capability engine (the paper's core
//!   contribution: crash invariants, versioned memory, recovery leases,
//!   refinement resources, recovery helping);
//! - [`goose_rt`] — the Goose runtime model (scheduler, heap with
//!   racy-access-is-UB semantics, crashable file system);
//! - [`perennial_disk`] — single- and two-disk substrates;
//! - [`perennial_checker`] — bounded exploration of schedules and crash
//!   points with online refinement validation;
//! - [`repldisk`] — the replicated disk (the paper's running example);
//! - [`crash_patterns`] — shadow copy, write-ahead logging, group
//!   commit;
//! - [`mailboat`] — the mail server, its proof harness, and the
//!   GoMail/CMAIL baselines.

pub use crash_patterns;
pub use goose_rt;
pub use mailboat;
pub use perennial;
pub use perennial_checker;
pub use perennial_disk;
pub use perennial_kv;
pub use perennial_spec;
pub use repldisk;

use perennial_checker::ScenarioSet;

/// Every expected-pass scenario registered across the workspace
/// (`kv/...`, `repldisk/...`, `mailboat/...`, `patterns/...`).
pub fn all_scenarios() -> ScenarioSet {
    let mut set = ScenarioSet::new();
    set.extend(perennial_kv::scenarios());
    set.extend(repldisk::harness::scenarios());
    set.extend(mailboat::scenarios());
    set.extend(crash_patterns::scenarios());
    set
}

/// Every expected-fail scenario (mutants and the §8.3 slice race) across
/// the workspace — the checker must report a counterexample for each.
pub fn all_mutant_scenarios() -> ScenarioSet {
    let mut set = ScenarioSet::new();
    set.extend(perennial_kv::mutant_scenarios());
    set.extend(repldisk::harness::mutant_scenarios());
    set.extend(mailboat::mutant_scenarios());
    set.extend(crash_patterns::mutant_scenarios());
    set
}
