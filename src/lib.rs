//! The Perennial reproduction workspace facade.
//!
//! This crate exists to host the workspace-level `examples/` and
//! `tests/`; the substance lives in the member crates:
//!
//! - [`perennial_spec`] — the transition-system specification DSL;
//! - [`perennial`] — the ghost capability engine (the paper's core
//!   contribution: crash invariants, versioned memory, recovery leases,
//!   refinement resources, recovery helping);
//! - [`goose_rt`] — the Goose runtime model (scheduler, heap with
//!   racy-access-is-UB semantics, crashable file system);
//! - [`perennial_disk`] — single- and two-disk substrates;
//! - [`perennial_checker`] — bounded exploration of schedules and crash
//!   points with online refinement validation;
//! - [`repldisk`] — the replicated disk (the paper's running example);
//! - [`crash_patterns`] — shadow copy, write-ahead logging, group
//!   commit;
//! - [`mailboat`] — the mail server, its proof harness, and the
//!   GoMail/CMAIL baselines.

pub use crash_patterns;
pub use goose_rt;
pub use mailboat;
pub use perennial;
pub use perennial_checker;
pub use perennial_disk;
pub use perennial_spec;
pub use repldisk;
