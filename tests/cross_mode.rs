//! Differential testing across the two Goose personalities: the *same*
//! Mailboat implementation runs on the model file system and on the
//! native file system, and a deterministic script must observe the same
//! mailbox contents — the reproduction's analog of "the same Go source
//! is both verified and compiled".

use goose_rt::fs::{FileSys, ModelFs, NativeFs};
use goose_rt::runtime::{ModelRtExt, NativeRt, Runtime};
use goose_rt::sched::ModelRt;
use mailboat::server::{mail_dirs, MailServer, Mailboat};
use std::collections::BTreeSet;
use std::sync::Arc;

const USERS: u64 = 4;

/// Runs a fixed script against a server and returns, per user, the set
/// of message bodies present at the end (IDs are random, bodies are
/// deterministic).
fn run_script(server: &dyn MailServer) -> Vec<BTreeSet<Vec<u8>>> {
    // Deliveries to several users.
    server.deliver(0, b"m0-a");
    server.deliver(0, b"m0-b");
    server.deliver(1, b"m1-a");
    server.deliver(3, b"m3-a");
    // Pickup + delete one specific body for user 0.
    let msgs = server.pickup(0);
    let doomed = msgs
        .iter()
        .find(|m| m.contents == b"m0-a")
        .expect("m0-a present")
        .id
        .clone();
    server.delete(0, &doomed);
    server.unlock(0);
    // More deliveries after a pickup cycle.
    server.deliver(1, b"m1-b");
    server.recover(); // harmless with an empty spool

    (0..USERS)
        .map(|u| {
            let set = server
                .pickup(u)
                .into_iter()
                .map(|m| m.contents)
                .collect::<BTreeSet<_>>();
            server.unlock(u);
            set
        })
        .collect()
}

fn expected() -> Vec<BTreeSet<Vec<u8>>> {
    vec![
        [b"m0-b".to_vec()].into_iter().collect(),
        [b"m1-a".to_vec(), b"m1-b".to_vec()].into_iter().collect(),
        BTreeSet::new(),
        [b"m3-a".to_vec()].into_iter().collect(),
    ]
}

#[test]
fn native_mode_script() {
    let dirs = mail_dirs(USERS);
    let dir_refs: Vec<&str> = dirs.iter().map(String::as_str).collect();
    let fs = NativeFs::new(&dir_refs);
    let server = Mailboat::init(fs, NativeRt::new(), USERS).unwrap();
    assert_eq!(run_script(&server), expected());
}

#[test]
fn model_mode_script() {
    // Controller-context execution: model primitives run without a
    // scheduling controller (yield points are no-ops outside virtual
    // threads), so the same code runs sequentially on the model FS.
    let rt = ModelRt::new(7, 1_000_000);
    let dirs = mail_dirs(USERS);
    let dir_refs: Vec<&str> = dirs.iter().map(String::as_str).collect();
    let fs = ModelFs::new(Arc::clone(&rt), &dir_refs);
    let runtime: Arc<dyn Runtime> = rt.as_runtime();
    let server = Mailboat::init(fs as Arc<dyn FileSys>, runtime, USERS).unwrap();
    assert_eq!(run_script(&server), expected());
}

#[test]
fn model_and_native_agree_after_crash() {
    // Crash with a dirty spool in both modes; recovery converges them.
    let dirs = mail_dirs(USERS);
    let dir_refs: Vec<&str> = dirs.iter().map(String::as_str).collect();

    // Native.
    let nfs = NativeFs::new(&dir_refs);
    let native = Mailboat::init(nfs.clone() as Arc<dyn FileSys>, NativeRt::new(), USERS).unwrap();
    native.deliver(2, b"survivor");
    let spool = nfs.resolve("spool").unwrap();
    let fd = nfs.create(spool, "t-orphan").unwrap().unwrap();
    nfs.append(fd, b"junk").unwrap();
    nfs.crash();
    native.recover();

    // Model.
    let rt = ModelRt::new(7, 1_000_000);
    let mfs = ModelFs::new(Arc::clone(&rt), &dir_refs);
    let runtime: Arc<dyn Runtime> = rt.as_runtime();
    let model = Mailboat::init(mfs.clone() as Arc<dyn FileSys>, runtime, USERS).unwrap();
    model.deliver(2, b"survivor");
    let spool = mfs.resolve("spool").unwrap();
    let fd = mfs.create(spool, "t-orphan").unwrap().unwrap();
    mfs.append(fd, b"junk").unwrap();
    mfs.crash();
    model.recover();

    for server in [&native as &dyn MailServer, &model as &dyn MailServer] {
        let msgs = server.pickup(2);
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].contents, b"survivor");
        server.unlock(2);
    }
    assert!(nfs.list_path("spool").unwrap().is_empty());
    assert!(mfs.list_path("spool").unwrap().is_empty());
}
