//! Deep verification runs: larger exploration budgets than the default
//! CI tests. Ignored by default; run with
//!
//! ```console
//! cargo test --release --test deep_check -- --ignored --nocapture
//! ```

use crash_patterns::txn_wal::TxnHarness;
use crash_patterns::wal::WalHarness;
use mailboat::harness::{MbHarness, MbWorkload};
use perennial_checker::{check, CheckConfig};
use perennial_kv::{KvHarness, KvWorkload};
use repldisk::harness::{RdHarness, RdWorkload};

fn deep() -> CheckConfig {
    CheckConfig::builder()
        .dfs_max_executions(5_000)
        .random_samples(200)
        .random_crash_samples(300)
        .max_steps(500_000)
        .build()
}

#[test]
#[ignore = "deep exploration; run explicitly with --ignored"]
fn deep_replicated_disk_mixed() {
    let report = check(&RdHarness::default(), &deep());
    eprintln!("{}", report.summary());
    assert!(
        report.passed(),
        "counterexample: {:?}",
        report.counterexample
    );
    assert!(report.executions > 1_000);
}

#[test]
#[ignore = "deep exploration; run explicitly with --ignored"]
fn deep_repldisk_failover() {
    let h = RdHarness {
        workload: RdWorkload::Failover,
        ..RdHarness::default()
    };
    let report = check(&h, &deep());
    eprintln!("{}", report.summary());
    assert!(
        report.passed(),
        "counterexample: {:?}",
        report.counterexample
    );
}

#[test]
#[ignore = "deep exploration; run explicitly with --ignored"]
fn deep_wal_and_txn_wal() {
    let report = check(&WalHarness::default(), &deep());
    eprintln!("{}", report.summary());
    assert!(
        report.passed(),
        "counterexample: {:?}",
        report.counterexample
    );
    assert!(report.helped_ops > 0);

    let report = check(&TxnHarness::default(), &deep());
    eprintln!("{}", report.summary());
    assert!(
        report.passed(),
        "counterexample: {:?}",
        report.counterexample
    );
    assert!(report.helped_ops > 0);
}

#[test]
#[ignore = "deep exploration; run explicitly with --ignored"]
fn deep_mailboat_two_users() {
    let h = MbHarness {
        workload: MbWorkload::TwoUsers,
        ..MbHarness::default()
    };
    let report = check(&h, &deep());
    eprintln!("{}", report.summary());
    assert!(
        report.passed(),
        "counterexample: {:?}",
        report.counterexample
    );
}

#[test]
#[ignore = "deep exploration; run explicitly with --ignored"]
fn deep_kv_same_bucket() {
    let h = KvHarness {
        workload: KvWorkload::SameBucket,
        ..KvHarness::default()
    };
    let report = check(&h, &deep());
    eprintln!("{}", report.summary());
    assert!(
        report.passed(),
        "counterexample: {:?}",
        report.counterexample
    );
}
