//! Workspace integration: every verified system through the full
//! checking pipeline, at a budget between the per-crate quick tests and
//! the harness binary's full runs.

use crash_patterns::group_commit::GcHarness;
use crash_patterns::shadow::ShadowHarness;
use crash_patterns::wal::WalHarness;
use mailboat::harness::MbHarness;
use perennial_checker::{check, CheckConfig, Pass};
use perennial_kv::KvHarness;
use repldisk::harness::{RdHarness, RdWorkload};

fn cfg() -> CheckConfig {
    CheckConfig::builder()
        .dfs_max_executions(400)
        .random_samples(20)
        .random_crash_samples(30)
        .without_passes([Pass::NestedCrash])
        .max_steps(200_000)
        .build()
}

#[test]
fn all_verified_systems_pass() {
    let mut summaries = Vec::new();

    let r = check(&RdHarness::default(), &cfg());
    assert!(r.passed(), "replicated disk: {:?}", r.counterexample);
    summaries.push(r.summary());

    let r = check(&ShadowHarness::default(), &cfg());
    assert!(r.passed(), "shadow copy: {:?}", r.counterexample);
    summaries.push(r.summary());

    let r = check(&WalHarness::default(), &cfg());
    assert!(r.passed(), "WAL: {:?}", r.counterexample);
    summaries.push(r.summary());

    let r = check(&GcHarness::default(), &cfg());
    assert!(r.passed(), "group commit: {:?}", r.counterexample);
    summaries.push(r.summary());

    let r = check(&MbHarness::default(), &cfg());
    assert!(r.passed(), "mailboat: {:?}", r.counterexample);
    summaries.push(r.summary());

    let r = check(&KvHarness::default(), &cfg());
    assert!(r.passed(), "node KV: {:?}", r.counterexample);
    summaries.push(r.summary());

    for s in &summaries {
        eprintln!("{s}");
    }
}

#[test]
fn helping_systems_actually_help_under_crash_sweep() {
    // The two systems whose proofs rely on recovery helping must
    // exercise it when a crash is swept through their write paths.
    let r = check(
        &RdHarness {
            workload: RdWorkload::SingleWrite,
            ..RdHarness::default()
        },
        &cfg(),
    );
    assert!(r.passed());
    assert!(r.helped_ops > 0, "replicated disk: helping never fired");

    let r = check(&WalHarness::default(), &cfg());
    assert!(r.passed());
    assert!(r.helped_ops > 0, "WAL: helping never fired");

    // The two that don't use helping must never fire it.
    let r = check(&ShadowHarness::default(), &cfg());
    assert!(r.passed());
    assert_eq!(r.helped_ops, 0, "shadow copy must not need helping");

    let r = check(&GcHarness::default(), &cfg());
    assert!(r.passed());
    assert_eq!(r.helped_ops, 0, "group commit must not need helping");
}

#[test]
fn deeper_nested_crash_sweep_on_two_systems() {
    // Crash-during-recovery (the idempotence obligation), at integration
    // depth for the two helping-based systems.
    let nested = CheckConfig::builder()
        .dfs_max_executions(0)
        .random_samples(0)
        .random_crash_samples(0)
        .max_steps(200_000)
        .build();
    let r = check(
        &RdHarness {
            workload: RdWorkload::SingleWrite,
            after_round: false,
            ..RdHarness::default()
        },
        &nested,
    );
    assert!(r.passed(), "replicated disk nested: {:?}", r.counterexample);

    let r = check(
        &WalHarness {
            with_reader: false,
            ..WalHarness::default()
        },
        &nested,
    );
    assert!(r.passed(), "WAL nested: {:?}", r.counterexample);
}
