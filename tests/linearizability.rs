//! Independent linearizability cross-check: drive the replicated disk
//! under the model scheduler while recording only *observable* events
//! (invocations and responses), then verify the history with the
//! standalone Wing–Gong checker. This validates that the ghost
//! commit-point instrumentation isn't what makes executions look
//! correct — the histories are linearizable on their own.

use goose_rt::runtime::NativeRt;
use goose_rt::sched::ModelRt;
use perennial_checker::linearize::{check_linearizable, Verdict};
use perennial_checker::recorder::Recorder;
use perennial_disk::two::{DiskId, ModelTwoDisks, NativeTwoDisks, TwoDisks};
use repldisk::spec::{RdOp, RdRet, RdSpec};
use repldisk::ReplDisk;
use std::sync::Arc;

const BLOCKS: u64 = 3;
const BS: usize = 2;

type Rec = Recorder<RdOp, RdRet>;

/// Runs a concurrent workload on the plain replicated disk under the
/// model scheduler with the given seed, recording the history.
fn run_recorded(seed: u64) -> Vec<perennial_checker::HistOp<RdOp, RdRet>> {
    let rt = ModelRt::new(seed, 1_000_000);
    let disks = ModelTwoDisks::new(Arc::clone(&rt), BLOCKS, BS);
    // The plain library with model locks: build it with the model
    // runtime so lock operations are schedulable.
    let runtime: Arc<dyn goose_rt::runtime::Runtime> =
        goose_rt::runtime::ModelRtExt::as_runtime(&rt);
    let rd = Arc::new(ReplDisk::new(&*runtime, disks as Arc<dyn TwoDisks>));
    let rec = Arc::new(Rec::new());

    for t in 0..3u64 {
        let rd = Arc::clone(&rd);
        let rec = Arc::clone(&rec);
        rt.spawn(format!("t{t}"), move || match t {
            0 => {
                let op = RdOp::Write(0, vec![1; BS]);
                let h = rec.invoke(op);
                rd.rd_write(0, &[1; BS]);
                rec.finish(h, RdRet::Unit);
            }
            1 => {
                let op = RdOp::Write(0, vec![2; BS]);
                let h = rec.invoke(op);
                rd.rd_write(0, &[2; BS]);
                rec.finish(h, RdRet::Unit);
            }
            _ => {
                let h = rec.invoke(RdOp::Read(0));
                let v = rd.rd_read(0);
                rec.finish(h, RdRet::Val(v.clone()));
                let h = rec.invoke(RdOp::Read(1));
                let v = rd.rd_read(1);
                rec.finish(h, RdRet::Val(v));
            }
        });
    }

    // Seeded pseudo-random schedule.
    let mut x = seed | 1;
    loop {
        let runnable = rt.runnable();
        if runnable.is_empty() {
            assert!(rt.all_done(), "deadlock");
            break;
        }
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let tid = runnable[(x as usize) % runnable.len()];
        let _ = rt.grant(tid);
    }
    rt.join_all();
    assert!(rt.failures().is_empty(), "{:?}", rt.failures());
    rec.history()
}

#[test]
fn recorded_histories_are_linearizable_across_many_schedules() {
    let spec = RdSpec {
        size: BLOCKS,
        block_size: BS,
    };
    for seed in 0..60u64 {
        let ops = run_recorded(seed);
        assert_eq!(ops.len(), 4);
        let verdict = check_linearizable(&spec, &ops, 1_000_000);
        assert_eq!(
            verdict,
            Verdict::Linearizable,
            "seed {seed} produced a non-linearizable history: {ops:?}"
        );
    }
}

#[test]
fn broken_replica_produces_non_linearizable_history() {
    // Sanity that the cross-check can fail: a "replicated" disk whose
    // second replica is stale serves a stale read after failover.
    let spec = RdSpec {
        size: BLOCKS,
        block_size: BS,
    };
    let disks = NativeTwoDisks::new(BLOCKS, BS);
    let rt = NativeRt::new();
    let rd = ReplDisk::new(&*rt, Arc::clone(&disks) as Arc<dyn TwoDisks>);
    let rec = Rec::new();

    let h = rec.invoke(RdOp::Write(0, vec![9; BS]));
    // A buggy write that skips disk 2 (performed directly on the device
    // to simulate the mutant in the plain library).
    disks.disk_write(DiskId::D1, 0, &[9; BS]);
    rec.finish(h, RdRet::Unit);

    disks.fail(DiskId::D1);

    let h = rec.invoke(RdOp::Read(0));
    let v = rd.rd_read(0); // fails over to the stale disk 2
    rec.finish(h, RdRet::Val(v.clone()));
    assert_eq!(v, vec![0; BS], "setup: the stale value must be served");

    let verdict = check_linearizable(&spec, &rec.history(), 1_000_000);
    assert_eq!(verdict, Verdict::NotLinearizable);
}
