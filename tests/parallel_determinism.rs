//! The parallel explorer's determinism contract (DESIGN.md §10): for a
//! fixed config, a pool of 8 workers must report byte-for-byte the same
//! counterexample — and the same statistics — as a single worker,
//! because counterexamples are selected by canonical (pass, index) order
//! rather than wall-clock discovery order.

use perennial_checker::{CheckConfig, CheckConfigBuilder, Counterexample, FaultPlan, Pass};
use perennial_suite::{all_mutant_scenarios, all_scenarios};

fn base_cfg() -> CheckConfigBuilder {
    CheckConfig::builder()
        .seed(7)
        .dfs_max_executions(300)
        .random_samples(10)
        .random_crash_samples(25)
        .without_passes([Pass::NestedCrash])
        .max_steps(200_000)
}

fn fingerprint(cx: &Counterexample) -> (String, u64, Vec<usize>, Vec<u64>, u64, FaultPlan) {
    (
        cx.pass.to_string(),
        cx.index,
        cx.schedule_prefix.clone(),
        cx.crash_points.clone(),
        cx.seed,
        cx.faults.clone(),
    )
}

#[test]
fn workers_do_not_change_the_counterexample() {
    // Fault sweeps on: three of the registered mutants are only
    // reachable through the fault passes, and those passes are part of
    // the determinism contract like any other.
    for scenario in &all_mutant_scenarios() {
        let seq = scenario.run(
            &base_cfg()
                .with_passes([Pass::DiskFault, Pass::TornWrite, Pass::NetFault])
                .workers(1)
                .build(),
        );
        let par = scenario.run(
            &base_cfg()
                .with_passes([Pass::DiskFault, Pass::TornWrite, Pass::NetFault])
                .workers(8)
                .build(),
        );

        let seq_cx = seq
            .counterexample
            .as_ref()
            .unwrap_or_else(|| panic!("{}: mutant not caught (workers=1)", scenario.name()));
        let par_cx = par
            .counterexample
            .as_ref()
            .unwrap_or_else(|| panic!("{}: mutant not caught (workers=8)", scenario.name()));
        assert_eq!(
            fingerprint(seq_cx),
            fingerprint(par_cx),
            "{}: counterexample differs between 1 and 8 workers",
            scenario.name()
        );

        // Statistics are part of the contract too: they are counted up
        // to the winning key, not up to whatever the pool got around to.
        assert_eq!(seq.executions, par.executions, "{}", scenario.name());
        assert_eq!(seq.total_steps, par.total_steps, "{}", scenario.name());
        assert_eq!(
            seq.crashes_injected,
            par.crashes_injected,
            "{}",
            scenario.name()
        );
        assert_eq!(seq.helped_ops, par.helped_ops, "{}", scenario.name());
        assert_eq!(seq.fault_plans, par.fault_plans, "{}", scenario.name());
        assert_eq!(seq.workers, 1);
        assert_eq!(par.workers, 8);
    }
}

#[test]
fn passing_scenarios_report_identical_statistics_across_pool_sizes() {
    // A passing run explores everything, so every statistic must match
    // exactly. One scenario suffices here; the mutant loop above covers
    // the failing side broadly.
    let registry = all_scenarios();
    let scenario = registry
        .get("repldisk/single-write")
        .expect("registered scenario");
    let seq = scenario.run(&base_cfg().workers(1).build());
    let par = scenario.run(&base_cfg().workers(8).build());
    assert!(seq.passed() && par.passed());
    assert_eq!(seq.executions, par.executions);
    assert_eq!(seq.total_steps, par.total_steps);
    assert_eq!(seq.crashes_injected, par.crashes_injected);
    assert_eq!(seq.crash_points, par.crash_points);
    assert_eq!(seq.helped_ops, par.helped_ops);
    assert!(seq.executions > 20, "expected a real exploration");
}

#[test]
fn keep_going_collects_multiple_distinct_counterexamples() {
    // The zeroing-recovery mutant fails at many crash points, so a
    // keep-going run must collect several distinct counterexamples.
    let registry = all_mutant_scenarios();
    let scenario = registry
        .get("repldisk/mutant/zeroing-recovery")
        .expect("registered scenario");
    let report = scenario.run(&base_cfg().workers(8).keep_going(true).build());

    assert!(!report.passed());
    let mut prints: Vec<_> = report.counterexamples.iter().map(fingerprint).collect();
    let total = prints.len();
    prints.dedup();
    assert_eq!(prints.len(), total, "counterexample keys must be unique");
    assert!(
        total >= 2,
        "keep_going found only {total} counterexample(s)"
    );
    // The canonical one is still the minimum-key failure.
    let first = report.counterexample.as_ref().unwrap();
    assert_eq!(fingerprint(first), prints[0].clone());
    // And keep_going must agree with cancelling mode on the winner.
    let cancelled = scenario.run(&base_cfg().workers(8).build());
    assert_eq!(
        fingerprint(cancelled.counterexample.as_ref().unwrap()),
        fingerprint(first)
    );
}

#[test]
fn keep_going_fault_passes_are_deterministic() {
    // For each fault pass, run its dedicated mutant in keep-going mode
    // with 1 and 8 workers: the *complete* list of counterexamples (not
    // just the canonical winner) must match, which pins down the
    // probe-derived job lists of the fault sweeps as worker-independent.
    let registry = all_mutant_scenarios();
    for (name, pass) in [
        ("repldisk/mutant/transient-give-up", "disk-fault-sweep"),
        ("patterns/mutant/wal-skip-commit-flush", "torn-write-sweep"),
        ("mailboat/mutant/net-no-dedup", "net-fault-sweep"),
    ] {
        let scenario = registry.get(name).expect("registered scenario");
        let seq = scenario.run(
            &base_cfg()
                .with_passes([Pass::DiskFault, Pass::TornWrite, Pass::NetFault])
                .keep_going(true)
                .workers(1)
                .build(),
        );
        let par = scenario.run(
            &base_cfg()
                .with_passes([Pass::DiskFault, Pass::TornWrite, Pass::NetFault])
                .keep_going(true)
                .workers(8)
                .build(),
        );
        assert!(!seq.passed(), "{name}: not caught");
        let seq_prints: Vec<_> = seq.counterexamples.iter().map(fingerprint).collect();
        let par_prints: Vec<_> = par.counterexamples.iter().map(fingerprint).collect();
        assert_eq!(
            seq_prints, par_prints,
            "{name}: keep-going counterexample lists differ between 1 and 8 workers"
        );
        let winner = seq.counterexample.as_ref().unwrap();
        assert_eq!(winner.pass, pass, "{name}: caught in the wrong pass");
        assert!(
            !winner.faults.is_empty(),
            "{name}: winning counterexample carries no fault plan"
        );
    }
}
