//! The profiler's side-channel contract (DESIGN.md §15): turning
//! `CheckConfig::profile(true)` on must not change what the checker
//! finds, writes, or fingerprints — and the profile's own counts must
//! be a pure function of the configuration, independent of the worker
//! count that happened to produce them.

use perennial_checker::telemetry::strip_timing;
use perennial_checker::{
    profile_to_json, report_fingerprint, CheckConfig, CheckConfigBuilder, Pass, TelemetrySink,
};
use perennial_suite::{all_mutant_scenarios, all_scenarios};
use serde_json::Value;

fn base_cfg() -> CheckConfigBuilder {
    CheckConfig::builder()
        .seed(7)
        .dfs_max_executions(150)
        .random_samples(10)
        .random_crash_samples(15)
        .without_passes([Pass::NestedCrash])
        .max_steps(200_000)
}

/// The profile as comparable JSON: wall-clock fields stripped (they are
/// the one legitimately machine-dependent part) and the worker count
/// removed (it is the one field that *names* the pool size).
fn comparable_profile(p: &perennial_checker::Profile) -> Value {
    let mut v = strip_timing(&profile_to_json(p));
    if let Value::Object(m) = &mut v {
        m.remove("workers");
    }
    v
}

#[test]
fn profiling_does_not_change_fingerprints_or_the_wal() {
    // The crossed contract: profiling {off, on} x workers {1, 8} must
    // produce the same report fingerprint and the same WAL contents
    // (timing fields excepted). The WAL comparison is what pins the
    // profiler as a pure consumer of records the checker already made.
    let registry = all_mutant_scenarios();
    let scenario = registry
        .get("repldisk/mutant/zeroing-recovery")
        .expect("registered scenario");
    let mut fingerprints = Vec::new();
    for workers in [1usize, 8] {
        let mut streams = Vec::new();
        for profiling in [false, true] {
            let (sink, buf) = TelemetrySink::shared_buffer();
            let report = scenario.run(
                &base_cfg()
                    .workers(workers)
                    .profile(profiling)
                    .telemetry(sink)
                    .build(),
            );
            assert_eq!(
                report.profile.is_some(),
                profiling,
                "profile presence must track the config"
            );
            fingerprints.push(report_fingerprint(&report));
            let text = String::from_utf8(buf.lock().clone()).expect("stream is UTF-8");
            let mut lines: Vec<String> = text
                .lines()
                .map(|l| {
                    let v = serde_json::from_str(l).expect("WAL line parses");
                    serde_json::to_string(&strip_timing(&v)).unwrap()
                })
                .collect();
            // Worker pools emit exec_done records in discovery order;
            // sort so the comparison is about content, not interleaving.
            lines.sort();
            streams.push(lines);
        }
        assert_eq!(
            streams[0], streams[1],
            "profiling changed the WAL contents (workers={workers})"
        );
    }
    fingerprints.dedup();
    assert_eq!(
        fingerprints.len(),
        1,
        "report fingerprint varies with profiling or worker count"
    );
}

#[test]
fn profile_counts_are_worker_count_independent() {
    // Everything the profile counts — per-pass cost, the contention
    // table, collisions, strategy introspection — is aggregated under
    // the same canonical cutoff as the report statistics, so pool size
    // must not show through (wall-clock fields excepted).
    let registry = all_mutant_scenarios();
    let scenario = registry
        .get("repldisk/mutant/zeroing-recovery")
        .expect("registered scenario");
    let run = |workers: usize| {
        scenario
            .run(
                &base_cfg()
                    .workers(workers)
                    .keep_going(true)
                    .profile(true)
                    .build(),
            )
            .profile
            .expect("profiling was on")
    };
    let seq = run(1);
    let par = run(8);
    assert_eq!(
        comparable_profile(&seq),
        comparable_profile(&par),
        "profile counts differ between 1 and 8 workers"
    );
    assert_eq!(seq.workers.workers, 1);
    assert_eq!(par.workers.workers, 8);
}

#[test]
fn profile_cost_attribution_adds_up() {
    // On a passing scenario the profile is a partition of the report's
    // own totals: per-pass executions and steps must sum to exactly the
    // report's executions and total_steps, and the pass rows come out
    // in canonical rank order.
    let registry = all_scenarios();
    let scenario = registry.get("patterns/wal").expect("registered scenario");
    let report = scenario.run(&base_cfg().workers(4).profile(true).build());
    assert!(report.passed());
    let profile = report.profile.as_ref().expect("profiling was on");

    let execs: u64 = profile.passes.iter().map(|p| p.executions).sum();
    let steps: u64 = profile.passes.iter().map(|p| p.steps).sum();
    assert_eq!(
        execs, report.executions as u64,
        "pass executions must partition"
    );
    assert_eq!(steps, report.total_steps, "pass steps must partition");
    let ranks: Vec<u8> = profile.passes.iter().map(|p| p.rank).collect();
    let mut sorted = ranks.clone();
    sorted.sort_unstable();
    assert_eq!(ranks, sorted, "pass rows must be in rank order");
    assert!(
        profile.passes.iter().any(|p| p.executions > 0),
        "a real exploration attributes cost somewhere"
    );
}
