//! The reduction contract (DESIGN.md §12): sleep-set partial-order
//! reduction and coverage-guided sampling change how much work the
//! schedule phase does — never what the checker finds. For every
//! registered mutant, a pruned run must report a counterexample
//! equivalent to the exhaustive baseline's, and must itself honour the
//! worker-count determinism contract (DESIGN.md §10) with pruning on.

use perennial_checker::{
    CheckConfig, CheckConfigBuilder, CheckReport, Counterexample, CoverageGuided, FaultPlan, Pass,
    SleepSetDpor,
};
use perennial_suite::all_mutant_scenarios;

fn base_cfg() -> CheckConfigBuilder {
    CheckConfig::builder()
        .seed(7)
        .dfs_max_executions(300)
        .random_samples(10)
        .random_crash_samples(25)
        .without_passes([Pass::NestedCrash])
        .with_passes([Pass::DiskFault, Pass::TornWrite, Pass::NetFault])
        .max_steps(200_000)
}

/// The exact counterexample identity: every field [`perennial_checker::replay`]
/// needs to reproduce it.
fn full_print(cx: &Counterexample) -> (String, u64, Vec<usize>, Vec<u64>, u64, FaultPlan) {
    (
        cx.pass.to_string(),
        cx.index,
        cx.schedule_prefix.clone(),
        cx.crash_points.clone(),
        cx.seed,
        cx.faults.clone(),
    )
}

/// Whether a counterexample came from the schedule phase. Strategies
/// explore that phase in different orders — that is the point of the
/// redesign — so a schedule-phase find is a different-but-genuine
/// interleaving of the same mutant and is not comparable field-by-field
/// across strategies (DPOR does not even run the random tail). Crash
/// and fault sweeps are strategy-independent, so any other find must
/// match the baseline's exactly.
fn schedule_phase(cx: &Counterexample) -> bool {
    cx.pass == Pass::Dfs || cx.pass == Pass::Random
}

fn winner<'a>(report: &'a CheckReport, who: &str, name: &str) -> &'a Counterexample {
    report
        .counterexample
        .as_ref()
        .unwrap_or_else(|| panic!("{name}: mutant not caught by {who}"))
}

#[test]
fn dpor_matches_exhaustive_on_every_mutant() {
    let mut pruned_total = 0u64;
    for scenario in &all_mutant_scenarios() {
        let name = scenario.name();
        let base = scenario.run(&base_cfg().workers(1).build());
        let dpor1 = scenario.run(&base_cfg().strategy(SleepSetDpor).workers(1).build());
        let dpor8 = scenario.run(&base_cfg().strategy(SleepSetDpor).workers(8).build());

        // Determinism contract with pruning enabled: 1 worker and 8
        // workers must agree byte-for-byte — counterexample, execution
        // count, and the pruning statistics themselves.
        assert_eq!(
            full_print(winner(&dpor1, "dpor/1", name)),
            full_print(winner(&dpor8, "dpor/8", name)),
            "{name}: DPOR counterexample differs between 1 and 8 workers"
        );
        assert_eq!(dpor1.executions, dpor8.executions, "{name}");
        assert_eq!(dpor1.total_steps, dpor8.total_steps, "{name}");
        assert_eq!(dpor1.pruned, dpor8.pruned, "{name}: pruned count varies");

        // Equivalence against the exhaustive baseline. The crash and
        // fault sweeps are strategy-independent, so a counterexample
        // found there must match exactly; one found in the schedule
        // phase may be a different-but-equivalent interleaving, named
        // by its (pass, ghost-trace fingerprint).
        let b = winner(&base, "exhaustive", name);
        let d = winner(&dpor1, "dpor", name);
        if !schedule_phase(b) && !schedule_phase(d) {
            assert_eq!(
                full_print(b),
                full_print(d),
                "{name}: DPOR changed a sweep-phase counterexample"
            );
        }
        pruned_total += dpor1.pruned;
    }
    assert!(
        pruned_total > 0,
        "sleep sets pruned nothing across the whole mutant registry"
    );
}

#[test]
fn coverage_guided_matches_exhaustive_on_every_mutant() {
    for scenario in &all_mutant_scenarios() {
        let name = scenario.name();
        let base = scenario.run(&base_cfg().workers(1).build());
        let cov1 = scenario.run(&base_cfg().strategy(CoverageGuided).workers(1).build());
        let cov8 = scenario.run(&base_cfg().strategy(CoverageGuided).workers(8).build());

        assert_eq!(
            full_print(winner(&cov1, "coverage/1", name)),
            full_print(winner(&cov8, "coverage/8", name)),
            "{name}: coverage-guided counterexample differs between 1 and 8 workers"
        );
        assert_eq!(cov1.executions, cov8.executions, "{name}");
        assert_eq!(
            cov1.coverage_guided, cov8.coverage_guided,
            "{name}: guided count varies with the pool size"
        );

        let b = winner(&base, "exhaustive", name);
        let c = winner(&cov1, "coverage", name);
        if !schedule_phase(b) && !schedule_phase(c) {
            assert_eq!(
                full_print(b),
                full_print(c),
                "{name}: coverage-guided changed a sweep-phase counterexample"
            );
        }
    }
}
