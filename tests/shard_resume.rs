//! Campaign robustness: sharded runs merge back into the unsharded
//! report, SIGKILL-truncated WALs resume to the same fingerprint, and
//! misbehaving scenarios (panicking harnesses, livelocks) degrade to
//! recorded outcomes instead of aborting the campaign.
//!
//! The equality oracle throughout is
//! [`perennial_checker::report_fingerprint`]: a hash of the report's
//! deterministic content (timing, worker count, shard assignment, and
//! the replayed-execution diagnostic excluded).

use perennial_checker::{
    check, merge_reports, report_fingerprint, CheckConfig, CheckConfigBuilder, ExecOutcome, Pass,
    Scenario, SleepSetDpor, SpinForever,
};
use std::path::PathBuf;

fn base_cfg() -> CheckConfigBuilder {
    CheckConfig::builder()
        .seed(7)
        .dfs_max_executions(300)
        .random_samples(10)
        .random_crash_samples(25)
        .with_passes([Pass::DiskFault, Pass::TornWrite, Pass::NetFault])
        .max_steps(200_000)
}

fn scenario(name: &str) -> Scenario {
    let mutants = crash_patterns::mutant_scenarios();
    crash_patterns::scenarios()
        .get(name)
        .or_else(|| mutants.get(name))
        .unwrap_or_else(|| panic!("unknown scenario {name}"))
        .clone()
}

fn tmp_path(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "perennial-shard-resume-{}-{tag}",
        std::process::id()
    ));
    p
}

/// Sharding is a partition: every job key lands in exactly one shard,
/// and n = 1 means everything.
#[test]
fn shard_of_partitions_the_key_space() {
    use perennial_checker::shard_of;
    for rank in 0..10u8 {
        for index in 0..200u64 {
            assert_eq!(shard_of((rank, index), 1), 0);
            for n in [2u32, 3, 8] {
                let s = shard_of((rank, index), n);
                assert!(s < n, "key ({rank},{index}) mapped to shard {s} of {n}");
            }
        }
    }
    // The split is not degenerate: with n = 8 every shard owns work.
    let mut hit = [false; 8];
    for index in 0..200u64 {
        hit[perennial_checker::shard_of((3, index), 8) as usize] = true;
    }
    assert!(hit.iter().all(|h| *h), "some shard owns no rank-3 jobs");
}

/// The tentpole contract: run every shard separately (any worker
/// count), merge, and the fingerprint equals an unsharded keep-going
/// run — for a passing scenario and for a mutant with counterexamples,
/// with DPOR pruning on, including the nested-crash sweep.
#[test]
fn shard_merge_reproduces_unsharded_run() {
    for name in [
        "patterns/shadow",
        "patterns/wal",
        "patterns/mutant/wal-skip-recovery-apply",
    ] {
        let s = scenario(name);
        // Sharded runs force keep-going semantics, so the reference is
        // an unsharded keep-going run.
        let reference = s.run(
            &base_cfg()
                .strategy(SleepSetDpor)
                .with_passes([Pass::NestedCrash])
                .keep_going(true)
                .workers(1)
                .build(),
        );
        let want = report_fingerprint(&reference);
        assert!(reference.executions > 0, "{name}: empty reference run");

        for n in [2u32, 3, 8] {
            // Alternate worker counts across shards: the merge must not
            // care how each shard was parallelized.
            let shards: Vec<_> = (0..n)
                .map(|i| {
                    s.run(
                        &base_cfg()
                            .strategy(SleepSetDpor)
                            .with_passes([Pass::NestedCrash])
                            .shard(i, n)
                            .workers(if i % 2 == 0 { 1 } else { 8 })
                            .build(),
                    )
                })
                .collect();
            let total: usize = shards.iter().map(|r| r.executions).sum();
            assert_eq!(
                total, reference.executions,
                "{name} n={n}: shard executions don't sum to the unsharded count"
            );
            let merged = merge_reports(shards).unwrap_or_else(|e| panic!("{name} n={n}: {e}"));
            assert_eq!(
                report_fingerprint(&merged),
                want,
                "{name} n={n}: merged fingerprint differs from unsharded run\n\
                 merged:    {}\n reference: {}",
                merged.summary(),
                reference.summary()
            );
        }
    }
}

/// Kill/resume contract: truncate the WAL at arbitrary byte offsets
/// (simulating SIGKILL mid-write) and resume — the final report
/// fingerprint matches the uninterrupted run, and the resumed run
/// actually replays work instead of starting over.
#[test]
fn truncated_wal_resumes_to_identical_fingerprint() {
    let s = scenario("patterns/wal");
    let cfg = || base_cfg().keep_going(true).workers(1);

    let cold = s.run(&cfg().build());
    let want = report_fingerprint(&cold);

    let full = tmp_path("full.jsonl");
    let walled = s.run(&cfg().telemetry_path(&full).build());
    assert_eq!(
        report_fingerprint(&walled),
        want,
        "telemetry changed the report"
    );
    let bytes = std::fs::read(&full).expect("WAL was written");
    assert!(
        bytes.len() > 1000,
        "WAL suspiciously small: {}",
        bytes.len()
    );

    // Cut mid-stream and mid-line: 30%, 60%, 95% of the file, nudged to
    // land inside a line.
    for (tag, frac) in [("30", 0.30f64), ("60", 0.60), ("95", 0.95)] {
        let mut cut = (bytes.len() as f64 * frac) as usize;
        while cut > 0 && bytes[cut - 1] == b'\n' {
            cut -= 1;
        }
        let path = tmp_path(&format!("cut{tag}.jsonl"));
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let resumed = s.run(&cfg().resume_from(&path).telemetry_path(&path).build());
        assert_eq!(
            report_fingerprint(&resumed),
            want,
            "resume from {frac} truncation diverged: {}",
            resumed.summary()
        );
        if frac > 0.5 {
            assert!(
                resumed.replayed > 0,
                "resume from {frac} truncation replayed nothing"
            );
        }
        // The resumed run appended its own records: resuming *again*
        // replays at least as much.
        let again = s.run(&cfg().resume_from(&path).telemetry_path(&path).build());
        assert_eq!(report_fingerprint(&again), want);
        assert!(again.replayed >= resumed.replayed);
        let _ = std::fs::remove_file(&path);
    }
    let _ = std::fs::remove_file(&full);
}

/// A WAL written by a different configuration is rejected (cold start),
/// never trusted.
#[test]
fn wal_from_different_config_is_ignored() {
    let s = scenario("patterns/shadow");
    let path = tmp_path("other-config.jsonl");
    let a = s.run(
        &base_cfg()
            .keep_going(true)
            .workers(1)
            .telemetry_path(&path)
            .build(),
    );
    // Same scenario, different seed: the guard must refuse the replay.
    let resumed = s.run(
        &base_cfg()
            .seed(8)
            .keep_going(true)
            .workers(1)
            .resume_from(&path)
            .build(),
    );
    assert_eq!(resumed.replayed, 0, "replayed records from a seed-7 WAL");
    assert!(a.executions > 0);
    let _ = std::fs::remove_file(&path);
}

/// Isolation contract: a scenario whose harness panics in `crash_reset`
/// yields recorded `harness_panic` outcomes and a finished report — the
/// campaign survives and other executions still run.
#[test]
fn panicking_harness_completes_the_campaign() {
    let s = scenario("patterns/mutant/panic-reset");
    let report = s.run(&base_cfg().keep_going(true).workers(4).build());
    assert!(
        report.outcomes.harness_panic > 0,
        "no harness_panic outcomes recorded: {}",
        report.summary()
    );
    assert!(
        report.outcomes.ok > 0,
        "campaign did not keep running crash-free executions"
    );
    let cx = report.counterexample.as_ref().expect("panics are failures");
    match &cx.outcome {
        ExecOutcome::HarnessPanic(msg) => {
            assert!(msg.contains("injected harness fault"), "{msg}")
        }
        other => panic!("expected HarnessPanic, got {other:?}"),
    }
    // Worker-count independence holds for panics too.
    let solo = s.run(&base_cfg().keep_going(true).workers(1).build());
    assert_eq!(report_fingerprint(&solo), report_fingerprint(&report));
}

/// Watchdog contract: a livelocked scenario exhausts its deterministic
/// step budget and is classified `Wedged` — the checker never hangs.
#[test]
fn livelocked_scenario_is_wedged_not_hung() {
    let spin = SpinForever::new("spin-forever", crash_patterns::ShadowHarness::default());
    let report = check(
        &spin,
        &CheckConfig::builder()
            .seed(7)
            .dfs_max_executions(2)
            .random_samples(0)
            .random_crash_samples(0)
            .without_passes([Pass::CrashSweep, Pass::NestedCrash])
            .max_steps(500)
            .build(),
    );
    let cx = report.counterexample.expect("the spinner must wedge");
    assert!(
        matches!(cx.outcome, ExecOutcome::Wedged(500)),
        "expected Wedged(500), got {:?}",
        cx.outcome
    );
    assert!(report.outcomes.wedged > 0);
}

/// Degradation contract: an execution budget cuts the run short but
/// produces a partial report with an explicit incomplete marker.
#[test]
fn exhausted_budget_degrades_to_partial_report() {
    let s = scenario("patterns/shadow");
    let report = s.run(
        &base_cfg()
            .keep_going(true)
            .workers(1)
            .exec_budget(10)
            .build(),
    );
    assert!(report.executions <= 10, "{}", report.executions);
    assert!(report.executions > 0);
    assert!(report.is_incomplete(), "budget exhaustion not marked");
    assert!(
        report.summary().contains("INCOMPLETE"),
        "{}",
        report.summary()
    );
    assert!(
        report.incomplete.iter().any(|m| m.contains("budget")),
        "{:?}",
        report.incomplete
    );
    // The budget is deterministic: same truncation at any worker count.
    let r8 = s.run(
        &base_cfg()
            .keep_going(true)
            .workers(8)
            .exec_budget(10)
            .build(),
    );
    assert_eq!(report_fingerprint(&report), report_fingerprint(&r8));
}

/// Merge edge cases: an empty shard list is a loud error, a 1-shard
/// campaign merges to exactly itself, and a merged (unsharded) report
/// refuses to merge again.
#[test]
fn merge_edge_cases_hold() {
    assert!(
        merge_reports(Vec::new())
            .unwrap_err()
            .contains("nothing to merge"),
        "empty merge must name the problem"
    );

    let s = scenario("patterns/wal");
    let solo = s.run(&base_cfg().shard(0, 1).workers(1).build());
    let merged = merge_reports(vec![solo.clone()]).expect("1-shard campaign merges");
    assert_eq!(
        report_fingerprint(&merged),
        report_fingerprint(&solo),
        "single-shard merge must be the identity"
    );
    assert_eq!(merged.executions, solo.executions);
    assert_eq!(merged.outcomes, solo.outcomes);
    assert_eq!(merged.coverage, solo.coverage);
    // The merged report is no longer a shard; merging it again is an
    // error, not a silent double-count.
    assert!(merge_reports(vec![merged]).is_err());
}

/// The environment stamp survives the round trip CLI campaigns take:
/// report -> JSON -> report -> merge. The merged stamp keeps the build
/// facts and re-reports the *combined* worker count.
#[test]
fn env_stamp_survives_serialization_and_merge() {
    use perennial_checker::{report_from_json, report_to_json, EnvStamp};
    let s = scenario("patterns/wal");
    let shards: Vec<_> = (0..2u32)
        .map(|i| {
            let r = s.run(
                &base_cfg()
                    .shard(i, 2)
                    .workers(if i == 0 { 1 } else { 4 })
                    .build(),
            );
            assert!(!r.env.rustc.is_empty(), "run did not stamp its environment");
            report_from_json(&report_to_json(&r)).expect("round trip")
        })
        .collect();
    let want = EnvStamp::current(0, "exhaustive");
    for r in &shards {
        assert_eq!(r.env.rustc, want.rustc, "rustc lost in serialization");
        assert_eq!(r.env.crate_version, want.crate_version);
        assert_eq!(r.env.strategy, "exhaustive");
    }
    let merged = merge_reports(shards).expect("shards merge");
    assert_eq!(merged.env.rustc, want.rustc, "rustc lost in the merge");
    assert_eq!(merged.env.crate_version, want.crate_version);
    assert_eq!(
        merged.env.workers, merged.workers as u64,
        "merged stamp must report the combined pool, not one shard's"
    );
}
