//! The shrinking + playback contract (DESIGN.md §16): shrinking must
//! preserve the failure fingerprint, never grow a counterexample, and
//! be deterministic across worker counts; the emitted playback test
//! must pin the exact failure against the mutant while the same
//! coordinates do nothing against the fixed implementation.
//!
//! Representative mutants cover the three shrink shapes: a
//! schedule-phase DFS counterexample (`kv/mutant/no-lock`, a real
//! prefix reduction), a torn-write sweep counterexample
//! (`patterns/mutant/wal-skip-commit-flush`), and a net-fault sweep
//! counterexample (`mailboat/mutant/net-no-dedup`).

use perennial_checker::shrink::{cx_size, failure_fingerprint};
use perennial_checker::{emit_test, test_file_name, CheckConfig, CheckConfigBuilder, Pass};
use perennial_suite::{all_mutant_scenarios, all_scenarios};

/// `(mutant, fixed)` pairs running the *same workload*, so replaying
/// the mutant's pinned coordinates against the fixed scenario is
/// meaningful.
const REPRESENTATIVES: [(&str, &str); 3] = [
    ("kv/mutant/no-lock", "kv/same-bucket"),
    ("patterns/mutant/wal-skip-commit-flush", "patterns/wal"),
    ("mailboat/mutant/net-no-dedup", "mailboat/net-deliver"),
];

fn cfg() -> CheckConfigBuilder {
    CheckConfig::builder()
        .seed(7)
        .dfs_max_executions(300)
        .random_samples(10)
        .random_crash_samples(25)
        .max_steps(200_000)
        .with_passes([Pass::DiskFault, Pass::TornWrite, Pass::NetFault])
}

#[test]
fn shrinking_preserves_the_fingerprint_and_never_grows() {
    let registry = all_mutant_scenarios();
    for (mutant, _) in REPRESENTATIVES {
        let scenario = registry.get(mutant).expect("registered mutant");

        let plain = scenario.run(&cfg().build());
        assert!(!plain.passed(), "{mutant}: mutant must fail");
        assert!(plain.shrink.is_none(), "{mutant}: shrink off => no stats");
        let original = &plain.counterexamples[0];
        let fp = failure_fingerprint(&original.outcome);
        let size = cx_size(original);

        let shrunk_report = scenario.run(&cfg().shrink(true).build());
        let stats = shrunk_report
            .shrink
            .expect("shrink on + counterexample => stats");
        let shrunk = &shrunk_report.counterexamples[0];

        // Same winning job both ways (shrink is post-selection) ...
        assert_eq!(shrunk.pass, original.pass, "{mutant}: pass changed");
        assert_eq!(shrunk.index, original.index, "{mutant}: index changed");
        // ... same failure identity, never a bigger certificate.
        assert_eq!(
            failure_fingerprint(&shrunk.outcome),
            fp,
            "{mutant}: shrinking changed the failure fingerprint"
        );
        let new_size = cx_size(shrunk);
        assert!(
            new_size <= size,
            "{mutant}: shrunk size {new_size} > original {size}"
        );
        assert_eq!(
            stats.steps_removed,
            (size - new_size) as u64,
            "{mutant}: steps_removed must equal the size delta"
        );
        assert!(stats.re_runs > 0, "{mutant}: shrinking must re-run");

        // The minimized certificate still reproduces under replay.
        let (outcome, _) = scenario.replay(shrunk, &cfg().build());
        assert!(outcome.is_failure(), "{mutant}: shrunk replay must fail");
        assert_eq!(
            failure_fingerprint(&outcome),
            fp,
            "{mutant}: shrunk replay fingerprint drifted"
        );
    }
}

#[test]
fn schedule_phase_counterexamples_shrink_strictly() {
    // Sweep-phase counterexamples are often born minimal (DESIGN.md
    // §16); schedule-phase ones carry a DFS prefix with real slack.
    // Pin that the flagship schedule-phase mutant actually reduces.
    let registry = all_mutant_scenarios();
    let scenario = registry.get("kv/mutant/no-lock").expect("registered");
    let report = scenario.run(&cfg().shrink(true).build());
    let stats = report.shrink.expect("stats");
    assert!(
        stats.steps_removed > 0,
        "kv/mutant/no-lock must shrink strictly (removed {})",
        stats.steps_removed
    );
}

#[test]
fn shrinking_is_deterministic_across_worker_counts() {
    let registry = all_mutant_scenarios();
    for (mutant, _) in REPRESENTATIVES {
        let scenario = registry.get(mutant).expect("registered mutant");
        let mut seen = Vec::new();
        for workers in [1usize, 8] {
            let report = scenario.run(&cfg().workers(workers).shrink(true).build());
            let cx = &report.counterexamples[0];
            seen.push((
                report.shrink.expect("stats"),
                cx.pass,
                cx.index,
                cx.seed,
                cx.schedule_prefix.clone(),
                cx.crash_points.clone(),
                cx.faults.compact(),
                failure_fingerprint(&cx.outcome),
            ));
        }
        assert_eq!(
            seen[0], seen[1],
            "{mutant}: shrink result differs between 1 and 8 workers"
        );
    }
}

#[test]
fn emitted_playback_test_pins_the_mutant_and_clears_the_fix() {
    let mutants = all_mutant_scenarios();
    let fixed_registry = all_scenarios();
    for (mutant, fixed) in REPRESENTATIVES {
        let scenario = mutants.get(mutant).expect("registered mutant");
        let report = scenario.run(&cfg().shrink(true).build());
        let cx = &report.counterexamples[0];
        let fp = failure_fingerprint(&cx.outcome);

        // The emitted source is a self-contained test with the pinned
        // coordinates as literals (compiled and executed for real by
        // the CI `playback` job).
        let source = emit_test(mutant, cx, 200_000);
        assert!(source.contains("#[test]"), "{mutant}: no test fn");
        assert!(source.contains(mutant), "{mutant}: scenario name absent");
        assert!(
            source.contains(&format!("{fp:#018x}")),
            "{mutant}: pinned fingerprint absent from the source"
        );
        assert!(
            source.contains(&format!("{:#018x}", cx.seed)),
            "{mutant}: pinned seed absent from the source"
        );
        assert!(
            source.contains("scenario.replay("),
            "{mutant}: emitted test must go through Scenario::replay"
        );
        let file = test_file_name(mutant);
        assert!(
            file.starts_with("replay_") && file.ends_with(".rs"),
            "{mutant}: bad file name {file}"
        );

        // The exact assertion the emitted test makes: the mutant
        // reproduces the pinned fingerprint ...
        let replay_cfg = CheckConfig::builder().max_steps(200_000).build();
        let (outcome, _) = scenario.replay(cx, &replay_cfg);
        assert!(outcome.is_failure(), "{mutant}: replay must fail");
        assert_eq!(failure_fingerprint(&outcome), fp, "{mutant}: replay fp");

        // ... and the fixed implementation, driven through the very
        // same coordinates, does not fail at all — once a bug is
        // fixed, the stale certificate trips and gets deleted.
        let fixed_scenario = fixed_registry.get(fixed).expect("registered fixed");
        let (fixed_outcome, trace) = fixed_scenario.replay(cx, &replay_cfg);
        assert!(
            !fixed_outcome.is_failure(),
            "{fixed}: fixed code failed the mutant's coordinates: {fixed_outcome:?}\n{trace}"
        );
    }
}

#[test]
fn shrink_on_a_passing_scenario_is_a_no_op() {
    let registry = all_scenarios();
    let scenario = registry.get("kv/same-bucket").expect("registered");
    let report = scenario.run(&cfg().shrink(true).build());
    assert!(report.passed(), "correct scenario must pass");
    assert!(
        report.shrink.is_none(),
        "no counterexample => no shrink stats"
    );
}
