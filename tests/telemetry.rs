//! The telemetry layer's side-channel contract (DESIGN.md §11):
//! enabling the JSONL event stream must not change what the checker
//! finds, the stream itself must be deterministic for a fixed seed
//! (timing fields excepted), and the coverage/metric fields of the
//! report must add up.

use perennial_checker::telemetry::strip_timing;
use perennial_checker::{
    render_summary, validate_json_line, CheckConfig, CheckConfigBuilder, Counterexample, FaultPlan,
    Pass, TelemetrySink,
};
use perennial_suite::{all_mutant_scenarios, all_scenarios};
use serde_json::Value;

fn base_cfg() -> CheckConfigBuilder {
    CheckConfig::builder()
        .seed(7)
        .dfs_max_executions(150)
        .random_samples(10)
        .random_crash_samples(15)
        .without_passes([Pass::NestedCrash])
        .max_steps(200_000)
}

fn fingerprint(cx: &Counterexample) -> (String, u64, Vec<usize>, Vec<u64>, u64, FaultPlan) {
    (
        cx.pass.to_string(),
        cx.index,
        cx.schedule_prefix.clone(),
        cx.crash_points.clone(),
        cx.seed,
        cx.faults.clone(),
    )
}

/// Runs a scenario with a capturing sink and returns (report, lines).
fn run_with_stream(
    scenario: &perennial_checker::Scenario,
    cfg: CheckConfigBuilder,
) -> (perennial_checker::CheckReport, Vec<String>) {
    let (sink, buf) = TelemetrySink::shared_buffer();
    let report = scenario.run(&cfg.telemetry(sink).build());
    let text = String::from_utf8(buf.lock().clone()).expect("stream is UTF-8");
    (report, text.lines().map(str::to_string).collect())
}

#[test]
fn telemetry_does_not_change_the_counterexample() {
    // The side-channel contract, crossed with the worker-count
    // contract: telemetry {off, on} x workers {1, 8} must all select
    // the same canonical counterexample.
    let registry = all_mutant_scenarios();
    let scenario = registry
        .get("repldisk/mutant/zeroing-recovery")
        .expect("registered scenario");
    let mut prints = Vec::new();
    for workers in [1usize, 8] {
        let plain = scenario.run(&base_cfg().workers(workers).build());
        let (with_telem, lines) = run_with_stream(scenario, base_cfg().workers(workers));
        assert!(!lines.is_empty());
        for report in [&plain, &with_telem] {
            let cx = report
                .counterexample
                .as_ref()
                .unwrap_or_else(|| panic!("mutant not caught (workers={workers})"));
            prints.push(fingerprint(cx));
        }
        // Statistics are covered by the contract too.
        assert_eq!(plain.executions, with_telem.executions);
        assert_eq!(plain.total_steps, with_telem.total_steps);
        assert_eq!(plain.outcomes, with_telem.outcomes);
        assert_eq!(plain.coverage, with_telem.coverage);
    }
    prints.dedup();
    assert_eq!(
        prints.len(),
        1,
        "counterexample varies with telemetry or worker count"
    );
}

#[test]
fn jsonl_stream_is_byte_stable_for_a_fixed_seed() {
    // Two identical single-worker runs must produce identical streams
    // once the wall-clock fields (TIMING_KEYS) are stripped. At
    // workers=1 event order is canonical, so plain line-by-line
    // comparison is exact.
    let registry = all_scenarios();
    let scenario = registry
        .get("repldisk/single-write")
        .expect("registered scenario");
    let canonical = |lines: &[String]| -> Vec<String> {
        lines
            .iter()
            .map(|line| {
                let v: Value = serde_json::from_str(line)
                    .unwrap_or_else(|e| panic!("unparseable line {line:?}: {e}"));
                serde_json::to_string(&strip_timing(&v)).unwrap()
            })
            .collect()
    };
    let (r1, lines1) = run_with_stream(scenario, base_cfg().workers(1));
    let (r2, lines2) = run_with_stream(scenario, base_cfg().workers(1));
    assert!(r1.passed() && r2.passed());
    assert_eq!(lines1.len(), lines2.len());
    assert_eq!(canonical(&lines1), canonical(&lines2));
}

#[test]
fn stream_has_the_documented_shape() {
    let registry = all_mutant_scenarios();
    let scenario = registry
        .get("repldisk/mutant/zeroing-recovery")
        .expect("registered scenario");
    let (report, lines) = run_with_stream(scenario, base_cfg().workers(1));
    assert!(!report.passed());

    let types: Vec<String> = lines
        .iter()
        .map(|l| validate_json_line(l).unwrap_or_else(|e| panic!("bad line {l:?}: {e}")))
        .collect();
    assert_eq!(types.first().map(String::as_str), Some("run_start"));
    assert_eq!(types.last().map(String::as_str), Some("run_end"));
    assert!(types.iter().any(|t| t == "pass_start"));
    assert!(types.iter().any(|t| t == "counterexample"));
    let execs = types.iter().filter(|t| *t == "exec_done").count();
    assert!(execs > 0, "no exec_done events");

    // Every record is stamped with the (harness) scenario name, the
    // same one on every line of a single run's stream.
    let mut names = std::collections::BTreeSet::new();
    for line in &lines {
        let v: Value = serde_json::from_str(line).unwrap();
        let Value::Object(map) = &v else {
            unreachable!()
        };
        match map.get("scenario") {
            Some(Value::String(name)) if !name.is_empty() => {
                names.insert(name.clone());
            }
            other => panic!("bad scenario stamp {other:?} in {line}"),
        }
    }
    assert_eq!(names.len(), 1, "one run, one scenario stamp: {names:?}");
}

#[test]
fn report_metrics_add_up_on_a_passing_run() {
    let registry = all_scenarios();
    let scenario = registry
        .get("repldisk/single-write")
        .expect("registered scenario");
    let report = scenario.run(
        &base_cfg()
            .with_passes([Pass::DiskFault, Pass::TornWrite, Pass::NetFault])
            .workers(4)
            .build(),
    );
    assert!(report.passed());

    // Outcome histogram and step histogram both cover every execution.
    assert_eq!(report.outcomes.total(), report.executions as u64);
    assert_eq!(report.outcomes.failures(), 0);
    assert_eq!(report.steps_hist.count(), report.executions as u64);
    assert_eq!(report.steps_hist.sum(), report.total_steps);
    assert_eq!(report.depth_hist.count(), report.executions as u64);

    // Per-pass accounting partitions the executions.
    assert!(!report.per_pass.is_empty());
    let per_pass_execs: u64 = report.per_pass.iter().map(|p| p.executions).sum();
    assert_eq!(per_pass_execs, report.executions as u64);
    let ranks: Vec<u8> = report.per_pass.iter().map(|p| p.rank).collect();
    let mut sorted = ranks.clone();
    sorted.sort_unstable();
    assert_eq!(ranks, sorted, "per_pass must be in rank order");

    // A passing run sweeps its whole enumerable spaces.
    let cov = &report.coverage;
    assert!(cov.crash_points_enumerable > 0);
    assert_eq!(cov.crash_points_exercised, cov.crash_points_enumerable);
    assert!(cov.fault_plans_enumerable() > 0, "fault sweeps were on");
    assert!((cov.fault_plan_ratio() - 1.0).abs() < 1e-9);
    assert!(cov.distinct_traces > 0);
    assert!(cov.distinct_traces <= report.executions as u64);

    // And render_summary shows all of it.
    let text = render_summary(&report);
    assert!(text.starts_with("PASS"), "{text}");
    for needle in ["Outcomes", "Steps/exec", "Per pass", "Coverage", "execs/s"] {
        assert!(text.contains(needle), "summary lacks {needle:?}:\n{text}");
    }
}

#[test]
fn telemetry_file_sink_writes_parseable_jsonl() {
    // The file-backed path (`telemetry_path`) used by CLI consumers.
    let dir = std::env::temp_dir().join("perennial-telemetry-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("run-{}.jsonl", std::process::id()));
    let registry = all_scenarios();
    let scenario = registry
        .get("repldisk/single-write")
        .expect("registered scenario");
    let report = scenario.run(&base_cfg().workers(2).telemetry_path(&path).build());
    assert!(report.passed());
    let text = std::fs::read_to_string(&path).unwrap();
    assert!(text.lines().count() >= 3);
    for line in text.lines() {
        validate_json_line(line).unwrap_or_else(|e| panic!("bad line {line:?}: {e}"));
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn progress_line_cadence_does_not_disturb_the_run() {
    // progress_every only writes to stderr; the report must be
    // identical to a run without it.
    let registry = all_scenarios();
    let scenario = registry
        .get("repldisk/single-write")
        .expect("registered scenario");
    let plain = scenario.run(&base_cfg().workers(2).build());
    let chatty = scenario.run(&base_cfg().workers(2).progress_every(10).build());
    assert_eq!(plain.executions, chatty.executions);
    assert_eq!(plain.outcomes, chatty.outcomes);
    assert_eq!(plain.coverage, chatty.coverage);
}
