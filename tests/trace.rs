//! The causal-trace layer's side-channel contract (DESIGN.md §14):
//! capturing an execution trace must not change what the checker finds
//! — the counterexample and the report fingerprint are identical with
//! capture off or on, at any worker count — and the consumers built on
//! it (explain timelines, Chrome-trace export, campaign dashboards) are
//! pure functions of deterministic inputs.

use perennial_checker::{
    chrome_trace_json, merge_reports, render_explain, render_failure, report_fingerprint,
    CheckConfig, CheckConfigBuilder, Counterexample, Dashboard, FaultPlan, Pass, TelemetrySink,
};
use perennial_suite::{all_mutant_scenarios, all_scenarios};
use serde_json::Value;

fn base_cfg() -> CheckConfigBuilder {
    CheckConfig::builder()
        .seed(7)
        .dfs_max_executions(300)
        .random_samples(10)
        .random_crash_samples(25)
        .with_passes([Pass::DiskFault, Pass::TornWrite, Pass::NetFault])
        .without_passes([Pass::NestedCrash])
        .max_steps(200_000)
}

fn fingerprint(cx: &Counterexample) -> (String, u64, Vec<usize>, Vec<u64>, u64, FaultPlan) {
    (
        cx.pass.to_string(),
        cx.index,
        cx.schedule_prefix.clone(),
        cx.crash_points.clone(),
        cx.seed,
        cx.faults.clone(),
    )
}

/// Trace capture {off, on} x workers {1, 8}: same counterexample, same
/// report fingerprint. The only difference capture makes is that the
/// counterexample carries a timeline.
#[test]
fn trace_capture_is_fingerprint_neutral() {
    let registry = all_mutant_scenarios();
    let scenario = registry
        .get("repldisk/mutant/zeroing-recovery")
        .expect("registered scenario");
    let mut prints = Vec::new();
    let mut cx_prints = Vec::new();
    for workers in [1usize, 8] {
        for capture in [false, true] {
            let report = scenario.run(&base_cfg().workers(workers).trace_capture(capture).build());
            let cx = report.counterexample.as_ref().unwrap_or_else(|| {
                panic!("mutant not caught (workers={workers}, capture={capture})")
            });
            assert_eq!(
                cx.timeline.is_some(),
                capture,
                "timeline present iff capture on (workers={workers})"
            );
            prints.push(report_fingerprint(&report));
            cx_prints.push(fingerprint(cx));
        }
    }
    prints.dedup();
    cx_prints.dedup();
    assert_eq!(prints.len(), 1, "report varies with capture or workers");
    assert_eq!(cx_prints.len(), 1, "cx varies with capture or workers");
}

/// Every registered mutant's failure report embeds the causal explain
/// timeline — the acceptance bar for the explain consumer.
#[test]
fn every_mutant_failure_report_includes_the_explain_timeline() {
    for scenario in &all_mutant_scenarios() {
        let report = scenario.run(&base_cfg().build());
        let cx = report
            .counterexample
            .as_ref()
            .unwrap_or_else(|| panic!("{}: mutant not caught", scenario.name()));
        let timeline = cx
            .timeline
            .as_ref()
            .unwrap_or_else(|| panic!("{}: no timeline captured", scenario.name()));
        assert!(
            !timeline.events.is_empty(),
            "{}: empty trace",
            scenario.name()
        );
        let text = render_failure(&report)
            .unwrap_or_else(|| panic!("{}: no failure report", scenario.name()));
        assert!(
            text.contains("Causal explain timeline:"),
            "{}: failure report lacks the explain section:\n{text}",
            scenario.name()
        );
    }
}

/// The explain rendering is a pure function of the (deterministic)
/// trace: workers 1 and 8 produce byte-identical timelines. CI diffs
/// exactly this.
#[test]
fn explain_timeline_is_identical_across_worker_counts() {
    let registry = all_mutant_scenarios();
    let scenario = registry
        .get("kv/mutant/in-place")
        .expect("registered scenario");
    let texts: Vec<String> = [1usize, 8]
        .iter()
        .map(|&workers| {
            let report = scenario.run(&base_cfg().workers(workers).build());
            let cx = report.counterexample.expect("mutant caught");
            render_explain(cx.timeline.as_ref().expect("timeline captured"))
        })
        .collect();
    assert_eq!(texts[0], texts[1], "explain output depends on workers");
}

/// The Chrome trace-event export of a real counterexample has the
/// documented shape: a traceEvents array of objects, thread-name
/// metadata first, every event with ph/pid/tid, and flow ("s"/"f")
/// events balanced in pairs.
#[test]
fn chrome_trace_export_of_a_real_counterexample_is_well_formed() {
    let registry = all_mutant_scenarios();
    let scenario = registry
        .get("repldisk/mutant/zeroing-recovery")
        .expect("registered scenario");
    let report = scenario.run(&base_cfg().build());
    let cx = report.counterexample.expect("mutant caught");
    let timeline = cx.timeline.expect("timeline captured");
    let v = chrome_trace_json(&timeline, scenario.name());
    let Value::Object(top) = &v else {
        panic!("export is not an object")
    };
    let Some(Value::Array(events)) = top.get("traceEvents") else {
        panic!("no traceEvents array")
    };
    assert!(events.len() > timeline.events.len(), "metadata + slices");
    let mut starts = 0u64;
    let mut finishes = 0u64;
    for ev in events {
        let Value::Object(m) = ev else {
            panic!("trace event is not an object: {ev:?}")
        };
        for key in ["ph", "name", "pid", "tid"] {
            assert!(m.get(key).is_some(), "missing {key} in {ev:?}");
        }
        match m.get("ph") {
            Some(Value::String(ph)) if ph == "s" => starts += 1,
            Some(Value::String(ph)) if ph == "f" => finishes += 1,
            _ => {}
        }
    }
    assert_eq!(starts, finishes, "unbalanced flow pairs");
    // The serialized file is valid JSON end-to-end.
    let text = serde_json::to_string_pretty(&v).unwrap();
    assert!(serde_json::from_str(&text).is_ok());
}

/// The dashboard's merged totals agree with `merge_reports` over the
/// same sharded campaign: fold each shard's telemetry stream into a
/// `Dashboard` and the per-scenario sums match the merged report.
#[test]
fn dashboard_totals_match_merge_reports_over_shards() {
    let registry = all_scenarios();
    let scenario = registry.get("patterns/wal").expect("registered scenario");
    let mut reports = Vec::new();
    let mut dash = Dashboard::default();
    for i in 0..2u32 {
        let (sink, buf) = TelemetrySink::shared_buffer();
        let report = scenario.run(&base_cfg().shard(i, 2).telemetry(sink).build());
        let text = String::from_utf8(buf.lock().clone()).expect("stream is UTF-8");
        dash.ingest(None, &text);
        reports.push(report);
    }
    let merged = merge_reports(reports).expect("shards merge");
    assert_eq!(dash.scenarios.len(), 1, "one scenario across both streams");
    let s = dash.scenarios.values().next().unwrap();
    assert_eq!(s.shards.len(), 2, "both shards ingested");
    assert_eq!(s.executions(), merged.executions as u64);
    assert_eq!(s.total_steps(), merged.total_steps);
    assert_eq!(s.crashes_injected(), merged.crashes_injected as u64);
    assert_eq!(s.counterexamples(), merged.counterexamples.len() as u64);
    assert_eq!(
        s.crash_points_enumerable(),
        merged.coverage.crash_points_enumerable
    );
    assert!(s.passed());
    // The pass_start/pass_end timing records fed the wall profile.
    assert!(
        !s.pass_wall_us.is_empty(),
        "no pass_end records in the stream"
    );
    let rendered = perennial_checker::render_dashboard(&dash);
    assert!(rendered.contains("CAMPAIGN DASHBOARD"), "{rendered}");
    assert!(
        rendered.contains(&merged.executions.to_string()),
        "{rendered}"
    );
}

/// Model-op counters flow from the goose runtime all the way into the
/// report and its summary footer.
#[test]
fn model_op_counters_surface_in_the_summary() {
    let registry = all_scenarios();
    let scenario = registry
        .get("repldisk/single-write")
        .expect("registered scenario");
    let report = scenario.run(&base_cfg().build());
    assert!(
        report.disk_writes > 0,
        "a disk scenario records disk writes"
    );
    let text = perennial_checker::render_summary(&report);
    assert!(text.contains("Model ops"), "{text}");
}
