#!/usr/bin/env python3
"""Offline markdown link checker (the CI `docs` job).

Walks every tracked *.md file, extracts inline links and images
(`[text](target)`), and fails if a relative target does not exist on
disk. External schemes (http/https/mailto) and pure in-page anchors
are skipped — this checks repo-internal references only, so stale
file moves and deleted docs are caught without any network access.
"""

import re
import subprocess
import sys
from pathlib import Path

LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def tracked_markdown(root: Path) -> list[Path]:
    out = subprocess.run(
        ["git", "ls-files", "*.md", "**/*.md"],
        cwd=root,
        capture_output=True,
        text=True,
        check=True,
    )
    return [root / line for line in out.stdout.splitlines() if line]


def check_file(path: Path, root: Path) -> list[str]:
    errors = []
    in_fence = False
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        # Fenced code blocks show sample output, not real links.
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK.finditer(line):
            target = match.group(1)
            if target.startswith(SKIP_PREFIXES):
                continue
            # Drop an in-page anchor suffix; an empty remainder is a
            # pure self-anchor, which needs no file to exist.
            target = target.split("#", 1)[0]
            if not target:
                continue
            resolved = (
                (root / target.lstrip("/"))
                if target.startswith("/")
                else (path.parent / target)
            )
            if not resolved.exists():
                rel = path.relative_to(root)
                errors.append(f"{rel}:{lineno}: broken link -> {match.group(1)}")
    return errors


def main() -> int:
    root = Path(
        subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    )
    files = tracked_markdown(root)
    errors = []
    for f in files:
        errors.extend(check_file(f, root))
    for e in errors:
        print(e, file=sys.stderr)
    print(f"checked {len(files)} markdown file(s): {len(errors)} broken link(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
